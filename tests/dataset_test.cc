#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/dataset/csv.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/discretize.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

std::vector<Attribute> SmallSchema() {
  return {
      Attribute{"color", AttributeType::kNominal, {"red", "green", "blue"}},
      Attribute{"size", AttributeType::kOrdinal, {"S", "M", "L", "XL"}},
  };
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset ds(SmallSchema());
  EXPECT_EQ(ds.num_rows(), 0u);
  ds.AppendRow({0, 1});
  ds.AppendRow({2, 3});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.num_attributes(), 2u);
  EXPECT_EQ(ds.at(0, 0), 0u);
  EXPECT_EQ(ds.at(1, 1), 3u);
  EXPECT_EQ(ds.column(0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(ds.RowToString(1), "blue, XL");
}

TEST(DatasetTest, ConstructFromColumns) {
  Dataset ds(SmallSchema(), {{0, 1, 2}, {3, 2, 1}});
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.at(2, 0), 2u);
}

TEST(DatasetTest, AttributeIndexByName) {
  Dataset ds(SmallSchema());
  ASSERT_TRUE(ds.AttributeIndex("size").ok());
  EXPECT_EQ(ds.AttributeIndex("size").value(), 1u);
  EXPECT_FALSE(ds.AttributeIndex("weight").ok());
}

TEST(DatasetTest, SetColumnReplaces) {
  Dataset ds(SmallSchema(), {{0, 1}, {0, 0}});
  ds.SetColumn(1, {3, 2});
  EXPECT_EQ(ds.at(0, 1), 3u);
}

TEST(DatasetTest, TiledReplicatesRecords) {
  Dataset ds(SmallSchema(), {{0, 1}, {2, 3}});
  Dataset tiled = ds.Tiled(3);
  EXPECT_EQ(tiled.num_rows(), 6u);
  EXPECT_EQ(tiled.at(0, 0), tiled.at(2, 0));
  EXPECT_EQ(tiled.at(1, 1), tiled.at(5, 1));
}

TEST(DatasetTest, ProjectSelectsAttributes) {
  Dataset ds(SmallSchema(), {{0, 1}, {2, 3}});
  Dataset projected = ds.Project({1});
  EXPECT_EQ(projected.num_attributes(), 1u);
  EXPECT_EQ(projected.attribute(0).name, "size");
  EXPECT_EQ(projected.column(0), (std::vector<uint32_t>{2, 3}));
}

TEST(DatasetTest, Cardinalities) {
  Dataset ds(SmallSchema());
  EXPECT_EQ(ds.Cardinalities(), (std::vector<int64_t>{3, 4}));
}

// --- Domain ---

TEST(DomainTest, SizeIsProduct) {
  Domain d({3, 4, 2});
  EXPECT_EQ(d.size(), 24u);
  EXPECT_EQ(d.num_positions(), 3u);
}

TEST(DomainTest, EncodeDecodeKnownValues) {
  Domain d({3, 4});
  // Last position varies fastest.
  EXPECT_EQ(d.Encode({0, 0}), 0u);
  EXPECT_EQ(d.Encode({0, 1}), 1u);
  EXPECT_EQ(d.Encode({1, 0}), 4u);
  EXPECT_EQ(d.Encode({2, 3}), 11u);
  EXPECT_EQ(d.Decode(11), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(d.DecodeAt(11, 0), 2u);
  EXPECT_EQ(d.DecodeAt(11, 1), 3u);
}

class DomainRoundTrip : public ::testing::TestWithParam<std::vector<size_t>> {
};

// Property: Encode and Decode are inverse bijections over the full domain.
TEST_P(DomainRoundTrip, EncodeDecodeInverse) {
  Domain d(GetParam());
  for (uint64_t code = 0; code < d.size(); ++code) {
    std::vector<uint32_t> tuple = d.Decode(code);
    EXPECT_EQ(d.Encode(tuple), code);
    for (size_t pos = 0; pos < d.num_positions(); ++pos) {
      EXPECT_EQ(d.DecodeAt(code, pos), tuple[pos]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DomainRoundTrip,
    ::testing::Values(std::vector<size_t>{2}, std::vector<size_t>{5, 3},
                      std::vector<size_t>{2, 2, 2, 2},
                      std::vector<size_t>{7, 1, 4},
                      std::vector<size_t>{16, 15}));

TEST(DomainTest, ComposeColumns) {
  Dataset ds(SmallSchema(), {{0, 1, 2}, {3, 0, 1}});
  Domain d = Domain::ForAttributes(ds, {0, 1});
  std::vector<uint32_t> composite = d.ComposeColumns(ds, {0, 1});
  EXPECT_EQ(composite[0], d.Encode({0, 3}));
  EXPECT_EQ(composite[1], d.Encode({1, 0}));
  EXPECT_EQ(composite[2], d.Encode({2, 1}));
}

TEST(DomainTest, MarginalizeTo) {
  Domain d({2, 2});
  // Joint: P(0,0)=.1 P(0,1)=.2 P(1,0)=.3 P(1,1)=.4.
  std::vector<double> joint = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> first = d.MarginalizeTo(joint, 0);
  EXPECT_DOUBLE_EQ(first[0], 0.3);
  EXPECT_DOUBLE_EQ(first[1], 0.7);
  std::vector<double> second = d.MarginalizeTo(joint, 1);
  EXPECT_DOUBLE_EQ(second[0], 0.4);
  EXPECT_DOUBLE_EQ(second[1], 0.6);
}

TEST(DomainTest, MarginalizeToSubsetPreservesOrder) {
  Domain d({2, 3, 2});
  std::vector<double> joint(d.size(), 0.0);
  joint[d.Encode({1, 2, 0})] = 0.5;
  joint[d.Encode({0, 2, 1})] = 0.5;
  // Marginalize onto (position 2, position 0) in that order.
  std::vector<double> sub = d.MarginalizeToSubset(joint, {2, 0});
  Domain sub_domain({2, 2});
  EXPECT_DOUBLE_EQ(sub[sub_domain.Encode({0, 1})], 0.5);
  EXPECT_DOUBLE_EQ(sub[sub_domain.Encode({1, 0})], 0.5);
}

// --- CSV ---

TEST(CsvTest, RoundTripThroughFile) {
  Dataset ds(SmallSchema(), {{0, 1, 2}, {3, 2, 0}});
  std::string path = ::testing::TempDir() + "/mdrr_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(ds, path).ok());

  auto rows = ReadCsvRows(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 4u);  // Header + 3 records.
  EXPECT_EQ(rows.value()[0][0], "color");

  std::vector<std::vector<std::string>> data_rows(rows.value().begin() + 1,
                                                  rows.value().end());
  auto loaded = DatasetFromRowsWithSchema(data_rows, SmallSchema(), {0, 1});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().column(0), ds.column(0));
  EXPECT_EQ(loaded.value().column(1), ds.column(1));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvRows("/nonexistent/path.csv").ok());
}

TEST(CsvTest, DatasetFromRowsInfersVocabulary) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "x"}, {"b", "x"}, {"a", "y"}};
  auto ds = DatasetFromRows(rows, {"first", "second"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().attribute(0).cardinality(), 2u);
  EXPECT_EQ(ds.value().attribute(1).cardinality(), 2u);
  EXPECT_EQ(ds.value().at(2, 0), 0u);  // "a" got code 0.
  EXPECT_EQ(ds.value().at(2, 1), 1u);  // "y" got code 1.
}

TEST(CsvTest, DatasetFromRowsRejectsRaggedRows) {
  std::vector<std::vector<std::string>> rows = {{"a", "x"}, {"b"}};
  EXPECT_FALSE(DatasetFromRows(rows, {"first", "second"}).ok());
}

TEST(CsvTest, SchemaLoadRejectsUnknownCategory) {
  std::vector<std::vector<std::string>> rows = {{"purple", "S"}};
  EXPECT_FALSE(DatasetFromRowsWithSchema(rows, SmallSchema(), {0, 1}).ok());
}

// --- Discretization ---

TEST(DiscretizeTest, EqualWidthBins) {
  std::vector<double> values = {0.0, 2.5, 5.0, 7.5, 10.0};
  auto result = EqualWidthDiscretize(values, 2, "metric");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().attribute.cardinality(), 2u);
  EXPECT_EQ(result.value().attribute.type, AttributeType::kOrdinal);
  EXPECT_EQ(result.value().codes, (std::vector<uint32_t>{0, 0, 1, 1, 1}));
}

TEST(DiscretizeTest, MaximumFallsInLastBin) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  auto result = EqualWidthDiscretize(values, 4, "metric");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().codes.back(), 3u);
}

TEST(DiscretizeTest, QuantileBinsBalanceCounts) {
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.UniformDouble());
  auto result = QuantileDiscretize(values, 4, "metric");
  ASSERT_TRUE(result.ok());
  std::vector<int> counts(result.value().attribute.cardinality(), 0);
  for (uint32_t code : result.value().codes) ++counts[code];
  for (int c : counts) {
    EXPECT_GT(c, 150);  // Roughly balanced quarters.
    EXPECT_LT(c, 350);
  }
}

TEST(DiscretizeTest, RejectsDegenerateInput) {
  EXPECT_FALSE(EqualWidthDiscretize({}, 3, "x").ok());
  EXPECT_FALSE(EqualWidthDiscretize({1.0, 1.0}, 3, "x").ok());
  EXPECT_FALSE(QuantileDiscretize({2.0, 2.0}, 3, "x").ok());
}

}  // namespace
}  // namespace mdrr
