#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/eval/utility_report.h"
#include "mdrr/rng/rng.h"

namespace mdrr::eval {
namespace {

TEST(UtilityReportTest, IdenticalDataScoresPerfectly) {
  Dataset ds = SynthesizeAdult(3000, 3);
  UtilityReportOptions options;
  options.queries_per_sigma = 10;
  auto report = BuildUtilityReport(ds, ds, options);
  ASSERT_TRUE(report.ok());
  for (double tv : report.value().marginal_tv) {
    EXPECT_DOUBLE_EQ(tv, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.value().max_dependence_shift, 0.0);
  for (double err : report.value().median_relative_error) {
    EXPECT_DOUBLE_EQ(err, 0.0);
  }
}

TEST(UtilityReportTest, ShuffledColumnsLoseDependenceNotMarginals) {
  Dataset ds = SynthesizeAdult(8000, 5);
  // Independently shuffle every column: marginals identical, joint
  // structure destroyed.
  Dataset shuffled = ds;
  Rng rng(7);
  for (size_t j = 0; j < ds.num_attributes(); ++j) {
    std::vector<uint32_t> column = ds.column(j);
    std::shuffle(column.begin(), column.end(), rng.engine());
    shuffled.SetColumn(j, std::move(column));
  }
  UtilityReportOptions options;
  options.queries_per_sigma = 10;
  auto report = BuildUtilityReport(ds, shuffled, options);
  ASSERT_TRUE(report.ok());
  for (double tv : report.value().marginal_tv) {
    EXPECT_DOUBLE_EQ(tv, 0.0);  // Marginals untouched.
  }
  // The Relationship <-> Sex dependence (~0.67) is gone.
  EXPECT_GT(report.value().max_dependence_shift, 0.5);
}

TEST(UtilityReportTest, ClusterSyntheticReleaseScoresWell) {
  Dataset ds = SynthesizeAdult(20000, 11);
  RrClustersOptions options;
  options.keep_probability = 0.8;
  options.clustering = ClusteringOptions{100.0, 0.1};
  Rng rng(13);
  auto protocol = RunRrClusters(ds, options, rng);
  ASSERT_TRUE(protocol.ok());
  Rng synth_rng(17);
  auto synthetic =
      SynthesizeFromClusters(*protocol, 20000, synth_rng);
  ASSERT_TRUE(synthetic.ok());

  UtilityReportOptions report_options;
  report_options.queries_per_sigma = 15;
  auto report = BuildUtilityReport(ds, synthetic.value(), report_options);
  ASSERT_TRUE(report.ok());
  // Marginals survive well at p = 0.8.
  for (double tv : report.value().marginal_tv) {
    EXPECT_LT(tv, 0.06);
  }
  // The report renders every attribute name.
  std::string text = report.value().ToString(ds);
  EXPECT_NE(text.find("Relationship"), std::string::npos);
  EXPECT_NE(text.find("dependence shift"), std::string::npos);
}

TEST(UtilityReportTest, ScalesDifferentlySizedReleases) {
  Dataset ds = SynthesizeAdult(4000, 19);
  // The release is the same data tiled 3x: counts triple, but after
  // scaling the report must see a perfect match.
  Dataset release = ds.Tiled(3);
  UtilityReportOptions options;
  options.queries_per_sigma = 10;
  auto report = BuildUtilityReport(ds, release, options);
  ASSERT_TRUE(report.ok());
  for (double err : report.value().median_relative_error) {
    EXPECT_NEAR(err, 0.0, 1e-12);
  }
}

TEST(UtilityReportTest, InputValidation) {
  Dataset ds = SynthesizeAdult(100, 23);
  Dataset other = ds.Project({0, 1});
  UtilityReportOptions options;
  EXPECT_FALSE(BuildUtilityReport(ds, other, options).ok());

  options.queries_per_sigma = 0;
  EXPECT_FALSE(BuildUtilityReport(ds, ds, options).ok());

  Dataset empty(ds.schema());
  options.queries_per_sigma = 5;
  EXPECT_FALSE(BuildUtilityReport(ds, empty, options).ok());
}

}  // namespace
}  // namespace mdrr::eval
