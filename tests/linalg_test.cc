#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/linalg/lu.h"
#include "mdrr/linalg/matrix.h"
#include "mdrr/linalg/structured.h"
#include "mdrr/rng/rng.h"

namespace mdrr::linalg {
namespace {

TEST(MatrixTest, IdentityAndAccess) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.rows(), 3u);
  EXPECT_EQ(id.cols(), 3u);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, RowAndColumnExtraction) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m(0, 2) = 7.0;
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  std::vector<double> v = {1, 1, 1};
  EXPECT_EQ(m.MatVec(v), (std::vector<double>{6, 15}));
  std::vector<double> w = {1, 1};
  EXPECT_EQ(m.TransposeMatVec(w), (std::vector<double>{5, 7, 9}));
}

TEST(MatrixTest, IsRowStochastic) {
  Matrix good(2, 2);
  good(0, 0) = 0.3;
  good(0, 1) = 0.7;
  good(1, 0) = 0.5;
  good(1, 1) = 0.5;
  EXPECT_TRUE(good.IsRowStochastic());

  Matrix negative = good;
  negative(0, 0) = -0.1;
  negative(0, 1) = 1.1;
  EXPECT_FALSE(negative.IsRowStochastic());

  Matrix bad_sum = good;
  bad_sum(1, 1) = 0.6;
  EXPECT_FALSE(bad_sum.IsRowStochastic());
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 0) = 1.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
}

TEST(LuTest, RejectsNonSquare) {
  EXPECT_FALSE(LuDecomposition::Factor(Matrix(2, 3)).ok());
}

TEST(LuTest, RejectsSingular) {
  Matrix singular(2, 2);
  singular(0, 0) = 1;
  singular(0, 1) = 2;
  singular(1, 0) = 2;
  singular(1, 1) = 4;
  EXPECT_FALSE(LuDecomposition::Factor(singular).ok());
}

TEST(LuTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  auto lu = LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  std::vector<double> x = lu.value().Solve({5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, DeterminantWithPivoting) {
  // Requires a row swap; determinant of [[0,1],[1,0]] is -1.
  Matrix swap(2, 2);
  swap(0, 1) = 1;
  swap(1, 0) = 1;
  auto lu = LuDecomposition::Factor(swap);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.value().Determinant(), -1.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(99);
  const size_t n = 8;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.UniformDouble() - 0.5;
    }
    a(i, i) += 2.0;  // Diagonally dominant: comfortably nonsingular.
  }
  auto inverse = Invert(a);
  ASSERT_TRUE(inverse.ok());
  Matrix product = a.MatMul(inverse.value());
  EXPECT_LT(product.MaxAbsDiff(Matrix::Identity(n)), 1e-10);
}

TEST(LuTest, SolveLinearSystemDimensionMismatch) {
  EXPECT_FALSE(SolveLinearSystem(Matrix::Identity(3), {1.0, 2.0}).ok());
}

// --- UniformMixture closed forms ---

TEST(UniformMixtureTest, ToDense) {
  UniformMixture m{3, 0.8, 0.1};
  Matrix dense = m.ToDense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(dense(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(dense(2, 1), 0.1);
}

TEST(UniformMixtureTest, EigenvaluesClosedForm) {
  // Eigenvalues of aI + bJ: a + rb (once) and a (r-1 times).
  UniformMixture m{4, 0.7, 0.1};
  double a = 0.6;
  double principal = a + 4 * 0.1;
  EXPECT_DOUBLE_EQ(m.MaxEigenvalue(), principal);
  EXPECT_DOUBLE_EQ(m.MinEigenvalue(), a);
}

TEST(UniformMixtureTest, SingularDetection) {
  // diagonal == off_diagonal makes the bulk eigenvalue zero.
  UniformMixture singular{3, 0.25, 0.25};
  EXPECT_TRUE(singular.IsSingular());
  EXPECT_FALSE(singular.ApplyInverse({1, 2, 3}).ok());
}

TEST(UniformMixtureTest, DetectUniformMixture) {
  UniformMixture m{5, 0.6, 0.1};
  auto detected = DetectUniformMixture(m.ToDense());
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected.value().size, 5u);
  EXPECT_DOUBLE_EQ(detected.value().diagonal, 0.6);
  EXPECT_DOUBLE_EQ(detected.value().off_diagonal, 0.1);

  Matrix not_uniform = m.ToDense();
  not_uniform(0, 1) = 0.2;
  EXPECT_FALSE(DetectUniformMixture(not_uniform).ok());
}

class StructuredInverseSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

// Property: the O(r) ApplyInverse agrees with the LU inverse for every
// size and keep-probability combination.
TEST_P(StructuredInverseSweep, MatchesLuInverse) {
  auto [r, p] = GetParam();
  double off = (1.0 - p) / static_cast<double>(r);
  UniformMixture m{r, p + off, off};

  Rng rng(static_cast<uint64_t>(r * 1000 + p * 100));
  std::vector<double> v(r);
  for (double& x : v) x = rng.UniformDouble();

  auto fast = m.ApplyInverse(v);
  ASSERT_TRUE(fast.ok());

  auto lu = LuDecomposition::Factor(m.ToDense());
  ASSERT_TRUE(lu.ok());
  std::vector<double> slow = lu.value().Solve(v);

  for (size_t i = 0; i < r; ++i) {
    EXPECT_NEAR(fast.value()[i], slow[i], 1e-9) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKeepProbabilities, StructuredInverseSweep,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 9, 16, 50, 300),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.95)));

}  // namespace
}  // namespace mdrr::linalg
