#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/protocol/session.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {
namespace {

Dataset MakeCorrelatedDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(3);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Discrete({0.5, 0.3, 0.2}));
    uint32_t b =
        rng.Bernoulli(0.85) ? a : static_cast<uint32_t>(rng.UniformInt(3));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(static_cast<uint32_t>(rng.UniformInt(2)));
  }
  return Dataset(schema, std::move(cols));
}

TEST(PartyTest, PublishesValidCodes) {
  Party party(0, {1, 2}, 7);
  std::vector<RrMatrix> matrices = {RrMatrix::KeepUniform(3, 0.5),
                                    RrMatrix::KeepUniform(4, 0.5)};
  std::vector<uint32_t> published = party.PublishIndependent(matrices);
  ASSERT_EQ(published.size(), 2u);
  EXPECT_LT(published[0], 3u);
  EXPECT_LT(published[1], 4u);
}

TEST(PartyTest, ClusterPublicationEncodesJointly) {
  Party party(0, {1, 2}, 11);
  AttributeClustering clusters = {{0, 1}};
  std::vector<Domain> domains = {Domain({3, 4})};
  // Identity matrix: the publication must be the exact composite code.
  std::vector<RrMatrix> matrices = {RrMatrix::Identity(12)};
  std::vector<uint32_t> published =
      party.PublishClusters(clusters, domains, matrices);
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published[0], domains[0].Encode({1, 2}));
}

TEST(SessionTest, EndToEndOnCorrelatedData) {
  Dataset ds = MakeCorrelatedDataset(60000, 3);
  SessionOptions options;
  options.keep_probability = 0.8;
  options.round1_keep_probability = 0.8;
  options.clustering = ClusteringOptions{20.0, 0.1};
  options.seed = 5;

  auto session = RunDistributedSession(ds, options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // A and B must cluster (their dependence survives round 1 at p = 0.8).
  ASSERT_GE(session.value().clusters.size(), 1u);
  bool ab_together = false;
  for (const auto& cluster : session.value().clusters) {
    if (cluster == std::vector<size_t>{0, 1}) ab_together = true;
  }
  EXPECT_TRUE(ab_together);

  // The cluster joint estimate approximates the true joint.
  for (size_t c = 0; c < session.value().clusters.size(); ++c) {
    if (session.value().clusters[c] != std::vector<size_t>{0, 1}) continue;
    const Domain& domain = session.value().cluster_domains[c];
    std::vector<double> truth(domain.size(), 0.0);
    for (size_t i = 0; i < ds.num_rows(); ++i) {
      truth[domain.Encode({ds.at(i, 0), ds.at(i, 1)})] +=
          1.0 / static_cast<double>(ds.num_rows());
    }
    for (size_t k = 0; k < truth.size(); ++k) {
      EXPECT_NEAR(session.value().cluster_joints[c][k], truth[k], 0.03)
          << "cell " << k;
    }
  }
}

TEST(SessionTest, MessageAccounting) {
  Dataset ds = MakeCorrelatedDataset(500, 7);
  SessionOptions options;
  options.clustering = ClusteringOptions{20.0, 0.1};
  auto session = RunDistributedSession(ds, options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().messages_round1, 500u);
  EXPECT_EQ(session.value().messages_broadcast, 500u);
  EXPECT_EQ(session.value().messages_round2, 500u);
}

TEST(SessionTest, EpsilonMatchesColumnLevelProtocol) {
  Dataset ds = MakeCorrelatedDataset(2000, 11);
  SessionOptions options;
  options.keep_probability = 0.5;
  options.round1_keep_probability = 0.6;
  options.clustering = ClusteringOptions{20.0, 0.1};
  auto session = RunDistributedSession(ds, options);
  ASSERT_TRUE(session.ok());

  // Round 1 epsilon: sum of per-attribute KeepUniform epsilons at 0.6.
  double expected_round1 = KeepUniformEpsilon(3, 0.6) * 2 +
                           KeepUniformEpsilon(2, 0.6);
  EXPECT_NEAR(session.value().round1_epsilon, expected_round1, 1e-9);

  // Round 2 epsilon: sum over clusters of the Section 6.3.2 budgets.
  double expected_round2 = 0.0;
  for (const auto& cluster : session.value().clusters) {
    expected_round2 += ClusterEpsilonBudget(ds, cluster, 0.5);
  }
  EXPECT_NEAR(session.value().round2_epsilon, expected_round2, 1e-6);
}

TEST(SessionTest, DeterministicInSeed) {
  Dataset ds = MakeCorrelatedDataset(1000, 13);
  SessionOptions options;
  options.clustering = ClusteringOptions{20.0, 0.1};
  options.seed = 42;
  auto a = RunDistributedSession(ds, options);
  auto b = RunDistributedSession(ds, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().clusters, b.value().clusters);
  for (size_t j = 0; j < ds.num_attributes(); ++j) {
    EXPECT_EQ(a.value().randomized.column(j), b.value().randomized.column(j));
  }
}

TEST(SessionTest, RejectsEmptySession) {
  Dataset empty(std::vector<Attribute>{
      Attribute{"A", AttributeType::kNominal, {"x", "y"}}});
  EXPECT_FALSE(RunDistributedSession(empty, SessionOptions{}).ok());
}

TEST(SessionTest, MarginalsRecoveredOnAdultSample) {
  Dataset adult = SynthesizeAdult(20000, 17);
  SessionOptions options;
  options.keep_probability = 0.8;
  options.clustering = ClusteringOptions{50.0, 0.1};
  auto session = RunDistributedSession(adult, options);
  ASSERT_TRUE(session.ok());

  // Marginalize each cluster joint back to single attributes and compare
  // with the true marginals.
  for (size_t c = 0; c < session.value().clusters.size(); ++c) {
    const auto& members = session.value().clusters[c];
    for (size_t position = 0; position < members.size(); ++position) {
      std::vector<double> estimated =
          session.value().cluster_domains[c].MarginalizeTo(
              session.value().cluster_joints[c], position);
      std::vector<double> truth = EmpiricalDistribution(
          adult.column(members[position]),
          adult.attribute(members[position]).cardinality());
      for (size_t v = 0; v < truth.size(); ++v) {
        EXPECT_NEAR(estimated[v], truth[v], 0.05)
            << "attribute " << members[position] << " value " << v;
      }
    }
  }
}

}  // namespace
}  // namespace mdrr::protocol
