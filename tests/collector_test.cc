#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/collector.h"
#include "mdrr/core/estimator.h"
#include "mdrr/eval/subset_query.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(ReportCollectorTest, EmptyCollectorState) {
  ReportCollector collector(RrMatrix::KeepUniform(3, 0.5));
  EXPECT_EQ(collector.num_reports(), 0);
  EXPECT_FALSE(collector.Estimate().ok());
  EXPECT_FALSE(collector.ConfidenceHalfWidths(0.05).ok());
  std::vector<double> lambda = collector.Lambda();
  for (double v : lambda) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ReportCollectorTest, RejectsOutOfRangeReport) {
  ReportCollector collector(RrMatrix::KeepUniform(3, 0.5));
  EXPECT_FALSE(collector.AddReport(3).ok());
  EXPECT_TRUE(collector.AddReport(2).ok());
  EXPECT_EQ(collector.num_reports(), 1);
}

TEST(ReportCollectorTest, StreamingMatchesBatchEstimation) {
  RrMatrix matrix = RrMatrix::KeepUniform(4, 0.6);
  Rng rng(3);
  std::vector<double> pi = {0.4, 0.3, 0.2, 0.1};
  std::vector<uint32_t> reports;
  for (int i = 0; i < 50000; ++i) {
    reports.push_back(
        matrix.Randomize(static_cast<uint32_t>(rng.Discrete(pi)), rng));
  }

  ReportCollector collector(matrix);
  ASSERT_TRUE(collector.AddReports(reports).ok());
  auto streaming = collector.Estimate();
  ASSERT_TRUE(streaming.ok());

  auto batch = EstimateProjectedDistribution(
      matrix, EmpiricalDistribution(reports, 4));
  ASSERT_TRUE(batch.ok());
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(streaming.value()[v], batch.value()[v]);
  }
}

TEST(ReportCollectorTest, ConfidenceShrinksAsReportsArrive) {
  RrMatrix matrix = RrMatrix::KeepUniform(3, 0.5);
  Rng rng(5);
  ReportCollector collector(matrix);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        collector.AddReport(matrix.Randomize(0, rng)).ok());
  }
  auto early = collector.ConfidenceHalfWidths(0.05);
  ASSERT_TRUE(early.ok());
  for (int i = 0; i < 9000; ++i) {
    ASSERT_TRUE(
        collector.AddReport(matrix.Randomize(0, rng)).ok());
  }
  auto late = collector.ConfidenceHalfWidths(0.05);
  ASSERT_TRUE(late.ok());
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_LT(late.value()[v], early.value()[v]);
  }
}

TEST(ReportCollectorTest, EpsilonIsDesignEpsilon) {
  RrMatrix matrix = RrMatrix::KeepUniform(5, 0.7);
  ReportCollector collector(matrix);
  EXPECT_DOUBLE_EQ(collector.Epsilon(), matrix.Epsilon());
}

TEST(RangeQueryTest, BuildsInclusiveRange) {
  Dataset ds = SynthesizeAdult(100, 3);
  CountQuery query =
      eval::MakeRangeQuery(ds, kAdultEducation, 8, 11);
  ASSERT_EQ(query.attributes, (std::vector<size_t>{kAdultEducation}));
  ASSERT_EQ(query.tuples.size(), 4u);
  EXPECT_EQ(query.tuples.front()[0], 8u);
  EXPECT_EQ(query.tuples.back()[0], 11u);
}

TEST(RangeQueryTest, SingleCategoryRange) {
  Dataset ds = SynthesizeAdult(100, 5);
  CountQuery query = eval::MakeRangeQuery(ds, kAdultIncome, 1, 1);
  ASSERT_EQ(query.tuples.size(), 1u);
}

TEST(RangeQueryTest, CountsMatchManualScan) {
  Dataset ds = SynthesizeAdult(5000, 7);
  CountQuery query =
      eval::MakeRangeQuery(ds, kAdultEducation, 12, 15);
  EmpiricalCounts counts(ds);
  double manual = 0.0;
  for (uint32_t code : ds.column(kAdultEducation)) {
    if (code >= 12 && code <= 15) manual += 1.0;
  }
  EXPECT_DOUBLE_EQ(counts.EstimateCount(query), manual);
}

}  // namespace
}  // namespace mdrr
