#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(RrMatrixTest, KeepUniformShape) {
  RrMatrix m = RrMatrix::KeepUniform(4, 0.6);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(m.is_structured());
  EXPECT_DOUBLE_EQ(m.Prob(0, 0), 0.6 + 0.1);
  EXPECT_DOUBLE_EQ(m.Prob(0, 1), 0.1);
  EXPECT_TRUE(m.ToDense().IsRowStochastic());
}

TEST(RrMatrixTest, FlatOffDiagonalShape) {
  RrMatrix m = RrMatrix::FlatOffDiagonal(5, 0.8);
  EXPECT_DOUBLE_EQ(m.Prob(2, 2), 0.8);
  EXPECT_DOUBLE_EQ(m.Prob(2, 3), 0.05);
  EXPECT_TRUE(m.ToDense().IsRowStochastic());
}

TEST(RrMatrixTest, OptimalForEpsilonIsRowStochasticAndTight) {
  for (size_t r : {2u, 5u, 50u}) {
    for (double eps : {0.1, 1.0, 3.0}) {
      RrMatrix m = RrMatrix::OptimalForEpsilon(r, eps);
      EXPECT_TRUE(m.ToDense().IsRowStochastic()) << r << " " << eps;
      // Expression (4) holds with equality for the optimal design.
      EXPECT_NEAR(m.Epsilon(), eps, 1e-9) << r << " " << eps;
    }
  }
}

TEST(RrMatrixTest, OptimalForEpsilonMatchesPaperClusterFormula) {
  // Section 6.3.2: p_C = 1 / (1 + (Pi |A| - 1) exp(-sum eps)) with
  // off-diagonal p_C exp(-sum eps).
  const size_t product = 30;
  const double eps_sum = 2.5;
  RrMatrix m = RrMatrix::OptimalForEpsilon(product, eps_sum);
  double expected_diag =
      1.0 / (1.0 + (static_cast<double>(product) - 1.0) * std::exp(-eps_sum));
  EXPECT_NEAR(m.Prob(0, 0), expected_diag, 1e-12);
  EXPECT_NEAR(m.Prob(0, 1), expected_diag * std::exp(-eps_sum), 1e-12);
}

TEST(RrMatrixTest, IdentityAndUniformExtremes) {
  RrMatrix id = RrMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.Prob(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.Prob(1, 0), 0.0);
  EXPECT_TRUE(std::isinf(id.Epsilon()));

  RrMatrix uniform = RrMatrix::UniformReplacement(4);
  EXPECT_DOUBLE_EQ(uniform.Prob(0, 3), 0.25);
  EXPECT_DOUBLE_EQ(uniform.Epsilon(), 0.0);  // Perfect privacy.
}

TEST(RrMatrixTest, FromDenseValidation) {
  linalg::Matrix bad(2, 2, 0.3);  // Rows sum to 0.6.
  EXPECT_FALSE(RrMatrix::FromDense(bad).ok());
  EXPECT_FALSE(RrMatrix::FromDense(linalg::Matrix(2, 3, 0.5)).ok());

  linalg::Matrix good(2, 2);
  good(0, 0) = 0.9;
  good(0, 1) = 0.1;
  good(1, 0) = 0.2;
  good(1, 1) = 0.8;
  auto m = RrMatrix::FromDense(good);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m.value().is_structured());  // Asymmetric: stays dense.
  EXPECT_DOUBLE_EQ(m.value().Prob(1, 0), 0.2);
}

TEST(RrMatrixTest, FromDenseDetectsStructure) {
  RrMatrix original = RrMatrix::KeepUniform(6, 0.5);
  auto roundtrip = RrMatrix::FromDense(original.ToDense());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_TRUE(roundtrip.value().is_structured());
}

TEST(RrMatrixTest, EpsilonForDenseMatrix) {
  linalg::Matrix p(2, 2);
  p(0, 0) = 0.9;
  p(0, 1) = 0.1;
  p(1, 0) = 0.3;
  p(1, 1) = 0.7;
  auto m = RrMatrix::FromDense(p);
  ASSERT_TRUE(m.ok());
  // Column ratios: 0.9/0.3 = 3 and 0.7/0.1 = 7 -> eps = ln 7.
  EXPECT_NEAR(m.value().Epsilon(), std::log(7.0), 1e-12);
}

TEST(RrMatrixTest, EpsilonMatchesPrivacyHelper) {
  for (size_t r : {2u, 9u, 16u}) {
    for (double p : {0.1, 0.5, 0.7}) {
      RrMatrix m = RrMatrix::KeepUniform(r, p);
      EXPECT_NEAR(m.Epsilon(), KeepUniformEpsilon(r, p), 1e-12);
    }
  }
}

TEST(RrMatrixTest, ConditionNumberClosedForm) {
  RrMatrix m = RrMatrix::KeepUniform(4, 0.6);
  // a = diag - off = 0.6; principal = a + r*off = 0.6 + 0.4 = 1.0.
  EXPECT_NEAR(m.ConditionNumber(), 1.0 / 0.6, 1e-12);
}

TEST(RrMatrixTest, ConditionNumberDenseMatchesStructured) {
  RrMatrix structured = RrMatrix::KeepUniform(5, 0.4);
  // Force the dense path by perturbing nothing but using FromDense on a
  // slightly asymmetric matrix built from the same dense values with a
  // tiny permutation that keeps row sums: swap two off-diagonal entries
  // in one row (keeps stochasticity, breaks uniform-mixture detection).
  linalg::Matrix dense = structured.ToDense();
  dense(0, 1) += 0.01;
  dense(0, 2) -= 0.01;
  auto m = RrMatrix::FromDense(dense);
  ASSERT_TRUE(m.ok());
  ASSERT_FALSE(m.value().is_structured());
  // Condition numbers should be close (small perturbation).
  EXPECT_NEAR(m.value().ConditionNumber(), structured.ConditionNumber(),
              0.15);
}

TEST(RrMatrixTest, SolveTransposeMatchesLu) {
  RrMatrix m = RrMatrix::KeepUniform(7, 0.3);
  std::vector<double> b = {0.1, 0.2, 0.05, 0.15, 0.2, 0.1, 0.2};
  auto fast = m.SolveTranspose(b);
  ASSERT_TRUE(fast.ok());
  auto lu = linalg::SolveLinearSystem(m.ToDense().Transpose(), b);
  ASSERT_TRUE(lu.ok());
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(fast.value()[i], lu.value()[i], 1e-10);
  }
}

TEST(RrMatrixTest, SolveTransposeRejectsSingular) {
  RrMatrix uniform = RrMatrix::UniformReplacement(3);
  EXPECT_FALSE(uniform.SolveTranspose({0.3, 0.3, 0.4}).ok());
}

TEST(RrMatrixTest, IdentityRandomizePassesThrough) {
  RrMatrix id = RrMatrix::Identity(5);
  Rng rng(3);
  for (uint32_t u = 0; u < 5; ++u) {
    EXPECT_EQ(id.Randomize(u, rng), u);
  }
}

class RandomizeDistributionSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

// Property: the empirical distribution of Randomize(u, .) converges to row
// u of the matrix, for structured designs across sizes and probabilities.
TEST_P(RandomizeDistributionSweep, EmpiricalRowMatchesMatrix) {
  auto [r, p] = GetParam();
  RrMatrix m = RrMatrix::KeepUniform(r, p);
  Rng rng(static_cast<uint64_t>(r * 31 + p * 1000));
  const uint32_t u = static_cast<uint32_t>(r / 2);
  const int trials = 100000;
  std::vector<int> counts(r, 0);
  for (int t = 0; t < trials; ++t) ++counts[m.Randomize(u, rng)];
  for (size_t v = 0; v < r; ++v) {
    double observed = counts[v] / static_cast<double>(trials);
    EXPECT_NEAR(observed, m.Prob(u, v), 0.012)
        << "r=" << r << " p=" << p << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKeepProbabilities, RandomizeDistributionSweep,
    ::testing::Combine(::testing::Values<size_t>(2, 5, 16),
                       ::testing::Values(0.1, 0.5, 0.9)));

TEST(RrMatrixTest, DenseRandomizeMatchesRow) {
  linalg::Matrix p(3, 3);
  p(0, 0) = 0.5;
  p(0, 1) = 0.3;
  p(0, 2) = 0.2;
  p(1, 0) = 0.1;
  p(1, 1) = 0.8;
  p(1, 2) = 0.1;
  p(2, 0) = 0.25;
  p(2, 1) = 0.25;
  p(2, 2) = 0.5;
  auto m = RrMatrix::FromDense(p);
  ASSERT_TRUE(m.ok());
  Rng rng(71);
  const int trials = 60000;
  std::vector<int> counts(3, 0);
  for (int t = 0; t < trials; ++t) ++counts[m.value().Randomize(0, rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.2, 0.01);
}

TEST(RrMatrixTest, RandomizeColumnLength) {
  RrMatrix m = RrMatrix::KeepUniform(4, 0.5);
  Rng rng(5);
  std::vector<uint32_t> codes = {0, 1, 2, 3, 0, 1};
  std::vector<uint32_t> randomized = m.RandomizeColumn(codes, rng);
  EXPECT_EQ(randomized.size(), codes.size());
  for (uint32_t v : randomized) EXPECT_LT(v, 4u);
}

}  // namespace
}  // namespace mdrr
