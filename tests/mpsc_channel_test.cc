#include "mdrr/common/mpsc_channel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mdrr {
namespace {

// Acquire-fill-push one report carrying `sequence`; returns false under
// backpressure.
bool Submit(StreamChannel& channel, uint64_t sequence) {
  StreamReportNode* node = channel.TryAcquire();
  if (node == nullptr) return false;
  node->sequence = sequence;
  node->codes.assign(1, static_cast<uint32_t>(sequence & 0xff));
  channel.Push(node);
  return true;
}

TEST(StreamChannelTest, SingleProducerDrainsInFifoOrder) {
  StreamChannel channel(8);
  for (uint64_t s = 0; s < 8; ++s) EXPECT_TRUE(Submit(channel, s));
  for (uint64_t s = 0; s < 8; ++s) {
    StreamReportNode* node = channel.TryPop();
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->sequence, s);
    EXPECT_EQ(node->codes.size(), 1u);
    channel.Recycle(node);
  }
  EXPECT_EQ(channel.TryPop(), nullptr);
}

TEST(StreamChannelTest, BackpressureSurfacesOnlyThroughTryAcquire) {
  StreamChannel channel(4);
  // The node pool, not the ring, is the bound: once it is exhausted
  // TryAcquire refuses, and Push can never find the ring full.
  std::vector<StreamReportNode*> held;
  for (;;) {
    StreamReportNode* node = channel.TryAcquire();
    if (node == nullptr) break;
    held.push_back(node);
  }
  EXPECT_GE(held.size(), 4u);
  for (StreamReportNode* node : held) {
    node->sequence = 0;
    channel.Push(node);
  }
  EXPECT_EQ(channel.TryAcquire(), nullptr);

  // Draining one report frees exactly one slot.
  StreamReportNode* popped = channel.TryPop();
  ASSERT_NE(popped, nullptr);
  channel.Recycle(popped);
  StreamReportNode* reacquired = channel.TryAcquire();
  EXPECT_NE(reacquired, nullptr);
  channel.Recycle(reacquired);
}

TEST(StreamChannelTest, TinyCapacityIsClampedAndUsable) {
  StreamChannel channel(0);
  EXPECT_TRUE(Submit(channel, 7));
  StreamReportNode* node = channel.TryPop();
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->sequence, 7u);
  channel.Recycle(node);
}

// Multi-producer exact delivery: every submitted sequence arrives exactly
// once, no matter how producers interleave. Run under ASan/UBSan (and
// TSan when configured) this is also the data-race and ABA stress: the
// consumer recycles nodes straight back into the pool the producers are
// CAS-popping from.
TEST(StreamChannelTest, MultiProducerDeliversEachReportExactlyOnce) {
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  StreamChannel channel(64);  // Small pool: constant recycle pressure.

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p]() {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t sequence = p * kPerProducer + i;
        while (!Submit(channel, sequence)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint32_t> seen(kTotal, 0);
  uint64_t drained = 0;
  while (drained < kTotal) {
    StreamReportNode* node = channel.TryPop();
    if (node == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(node->sequence, kTotal);
    ++seen[node->sequence];
    channel.Recycle(node);
    ++drained;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(channel.TryPop(), nullptr);
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](uint32_t n) { return n == 1; }));
}

// With one producer the drain order is the submission order even under a
// concurrently recycling consumer -- the property the replay's
// drain-order determinism rests on.
TEST(StreamChannelTest, ConcurrentSingleProducerKeepsFifo) {
  constexpr uint64_t kReports = 50000;
  StreamChannel channel(32);
  std::thread producer([&channel]() {
    for (uint64_t s = 0; s < kReports; ++s) {
      while (!Submit(channel, s)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kReports) {
    StreamReportNode* node = channel.TryPop();
    if (node == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(node->sequence, expected);
    channel.Recycle(node);
    ++expected;
  }
  producer.join();
}

}  // namespace
}  // namespace mdrr
