// The frequency-oracle seam, end to end: the direct-encoding reference
// instance must reproduce the engine's RR transcript bit for bit under
// both RNG policies and any thread count, the spec's frequency_oracle
// section must round-trip and validate, and the OUE/OLH backends must
// run through the release facade with deterministic, thread-invariant
// closed-form marginals.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/batch_engine.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/release/spec.h"

namespace mdrr {
namespace {

using release::FrequencyOracleSpec;
using release::ParseReleaseSpec;
using release::PrintReleaseSpec;
using release::ReleasePlanner;
using release::ReleaseSpec;
using release::ValidateReleaseSpec;

Dataset SmallData(size_t n = 3000) { return SynthesizeAdult(n, 2020); }

BatchPerturbationOptions EngineOptions(size_t threads, RngKind kind) {
  BatchPerturbationOptions options;
  options.seed = 7;
  options.num_threads = threads;
  options.shard_size = 256;
  options.rng = kind;
  return options;
}

// The tentpole's bit-identity pin at the engine layer: routing a column
// through RunOracle with the direct-encoding oracle over the SAME
// design matrix reproduces RunIndependent's randomized codes exactly,
// under both RNG policies.
TEST(OracleSeamTest, DirectOracleMatchesIndependentColumnsBitwise) {
  const Dataset data = SmallData();
  const RrIndependentOptions design;  // KeepUniform(0.7), the default.

  for (RngKind kind : {RngKind::kMt19937, RngKind::kPhilox}) {
    BatchPerturbationEngine engine(EngineOptions(3, kind));
    auto independent = engine.RunIndependent(data, design);
    ASSERT_TRUE(independent.ok());

    for (size_t j = 0; j < data.num_attributes(); ++j) {
      const size_t r = data.attribute(j).cardinality();
      const DirectEncodingOracle oracle(MakeIndependentMatrix(r, design));
      OracleColumnResult column =
          engine.RunOracle(oracle, data.column(j), j);
      EXPECT_EQ(column.codes,
                independent.value().randomized.column(j))
          << "rng=" << (kind == RngKind::kPhilox ? "philox" : "mt19937")
          << " attribute " << j;
      ASSERT_EQ(column.lambda.size(), independent.value().lambda[j].size());
      for (size_t v = 0; v < column.lambda.size(); ++v) {
        EXPECT_DOUBLE_EQ(column.lambda[v],
                         independent.value().lambda[j][v]);
      }
    }
  }
}

// RunOracle is bit-identical for any thread count at fixed (seed,
// shard_size) for every backend, under both RNG policies.
TEST(OracleSeamTest, RunOracleIsThreadInvariant) {
  const Dataset data = SmallData();
  const std::vector<uint32_t>& column = data.column(1);
  const size_t r = data.attribute(1).cardinality();

  for (OracleBackend backend :
       {OracleBackend::kDirect, OracleBackend::kOptimizedUnary,
        OracleBackend::kLocalHashing}) {
    auto oracle = MakeFrequencyOracle(backend, r, 1.5);
    ASSERT_TRUE(oracle.ok());
    for (RngKind kind : {RngKind::kMt19937, RngKind::kPhilox}) {
      BatchPerturbationEngine one(EngineOptions(1, kind));
      BatchPerturbationEngine four(EngineOptions(4, kind));
      OracleColumnResult a = one.RunOracle(*oracle.value(), column, 1);
      OracleColumnResult b = four.RunOracle(*oracle.value(), column, 1);
      EXPECT_EQ(a.codes, b.codes) << ToString(backend);
      EXPECT_EQ(a.counts, b.counts) << ToString(backend);
    }
  }
}

TEST(OracleSpecTest, DefaultSectionPrintsNothing) {
  ReleaseSpec spec;
  EXPECT_TRUE(spec.frequency_oracle.is_default());
  const std::string text = PrintReleaseSpec(spec);
  EXPECT_EQ(text.find("frequency_oracle"), std::string::npos);
}

TEST(OracleSpecTest, NonDefaultSectionRoundTrips) {
  ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.frequency_oracle.backend = OracleBackend::kLocalHashing;
  spec.frequency_oracle.epsilon = 2.5;
  auto parsed = ParseReleaseSpec(PrintReleaseSpec(spec));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value() == spec);
  EXPECT_EQ(parsed.value().frequency_oracle.backend,
            OracleBackend::kLocalHashing);
  EXPECT_EQ(parsed.value().frequency_oracle.epsilon, 2.5);
}

TEST(OracleSpecTest, ValidationPinsContradictions) {
  ReleaseSpec base;
  base.mechanism.kind = release::MechanismKind::kIndependent;
  base.frequency_oracle.backend = OracleBackend::kOptimizedUnary;
  ASSERT_TRUE(ValidateReleaseSpec(base, 0).ok());

  {  // Oracle backends apply per attribute only.
    ReleaseSpec spec = base;
    spec.mechanism.kind = release::MechanismKind::kClusters;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // Streaming ingest stays on the default RR path.
    ReleaseSpec spec = base;
    spec.streaming.enabled = true;
    spec.streaming.window_size = 100;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // The distributed wire protocol serves RR shard kernels only.
    ReleaseSpec spec = base;
    spec.execution.kind = release::PolicyKind::kDistributed;
    spec.execution.num_workers = 1;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // No microdata means no adjustment groups.
    ReleaseSpec spec = base;
    spec.adjustment.enabled = true;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // ... and no synthetic release.
    ReleaseSpec spec = base;
    spec.synthetic.enabled = true;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // ... and no randomized CSV output.
    ReleaseSpec spec = base;
    spec.output.randomized_csv = "y.csv";
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
  {  // Negative epsilon never validates.
    ReleaseSpec spec = base;
    spec.frequency_oracle.epsilon = -1.0;
    EXPECT_FALSE(ValidateReleaseSpec(spec, 0).ok());
  }
}

ReleaseSpec OracleReleaseSpec(OracleBackend backend, double epsilon) {
  ReleaseSpec spec;
  spec.dataset.source = release::DatasetSpec::Source::kSyntheticAdult;
  spec.dataset.synthetic_records = 2000;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.frequency_oracle.backend = backend;
  spec.frequency_oracle.epsilon = epsilon;
  return spec;
}

// OUE and OLH run end to end through the release facade: closed-form
// marginals on the full schema, exact per-attribute epsilon accounting,
// and no microdata.
TEST(OracleReleaseTest, FrequencyOnlyBackendsReleaseClosedFormMarginals) {
  for (OracleBackend backend :
       {OracleBackend::kOptimizedUnary, OracleBackend::kLocalHashing}) {
    auto plan = ReleasePlanner::Plan(OracleReleaseSpec(backend, 1.0));
    ASSERT_TRUE(plan.ok()) << ToString(backend);
    auto artifacts = plan.value().Run();
    ASSERT_TRUE(artifacts.ok()) << ToString(backend);

    const Dataset& data = plan.value().dataset();
    ASSERT_EQ(artifacts.value().marginal_estimates.size(),
              data.num_attributes());
    for (size_t j = 0; j < data.num_attributes(); ++j) {
      const std::vector<double>& marginal =
          artifacts.value().marginal_estimates[j];
      ASSERT_EQ(marginal.size(), data.attribute(j).cardinality());
      double total = 0.0;
      for (double x : marginal) {
        EXPECT_GE(x, 0.0);
        total += x;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
    // One epsilon per attribute, composed sequentially.
    EXPECT_DOUBLE_EQ(artifacts.value().release_epsilon,
                     static_cast<double>(data.num_attributes()));
    // Frequency-only backends publish no microdata.
    EXPECT_EQ(artifacts.value().randomized.num_attributes(), 0u);
  }
}

// The direct backend with an explicit epsilon still releases microdata
// through the oracle mechanism.
TEST(OracleReleaseTest, DirectBackendWithExplicitEpsilonKeepsMicrodata) {
  ReleaseSpec spec = OracleReleaseSpec(OracleBackend::kDirect, 2.0);
  ASSERT_FALSE(spec.frequency_oracle.is_default());
  auto plan = ReleasePlanner::Plan(spec);
  ASSERT_TRUE(plan.ok());
  auto artifacts = plan.value().Run();
  ASSERT_TRUE(artifacts.ok());
  const Dataset& data = plan.value().dataset();
  EXPECT_EQ(artifacts.value().randomized.num_rows(), data.num_rows());
  EXPECT_EQ(artifacts.value().randomized.num_attributes(),
            data.num_attributes());
  EXPECT_DOUBLE_EQ(artifacts.value().release_epsilon,
                   2.0 * static_cast<double>(data.num_attributes()));
}

// Sharded oracle releases are bit-identical for any thread count, and
// deterministic run to run, under both RNG policies.
TEST(OracleReleaseTest, ShardedReleaseIsThreadInvariant) {
  for (const char* rng : {"mt19937", "philox"}) {
    ReleaseSpec spec = OracleReleaseSpec(OracleBackend::kLocalHashing, 1.5);
    spec.execution.kind = release::PolicyKind::kSharded;
    spec.execution.shard_size = 128;
    auto parsed_rng = release::RngKindFromString(rng);
    ASSERT_TRUE(parsed_rng.ok());
    spec.execution.rng = parsed_rng.value();

    std::vector<std::vector<std::vector<double>>> runs;
    for (size_t threads : {1, 4}) {
      spec.execution.num_threads = threads;
      auto plan = ReleasePlanner::Plan(spec);
      ASSERT_TRUE(plan.ok());
      auto artifacts = plan.value().Run();
      ASSERT_TRUE(artifacts.ok());
      runs.push_back(artifacts.value().marginal_estimates);
    }
    EXPECT_EQ(runs[0], runs[1]) << rng;
  }
}

}  // namespace
}  // namespace mdrr
