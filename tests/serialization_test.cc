#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/serialization.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

RrClustersResult MakeProtocolResult(const Dataset& ds) {
  RrClustersOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  Rng rng(7);
  auto result = RunRrClusters(ds, options, rng);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  Dataset ds = SynthesizeAdult(5000, 3);
  RrClustersResult protocol = MakeProtocolResult(ds);
  ClusterEstimates original = EstimatesFromResult(protocol);

  std::string path = ::testing::TempDir() + "/mdrr_estimates_roundtrip.txt";
  ASSERT_TRUE(WriteClusterEstimates(original, path).ok());
  auto loaded = ReadClusterEstimates(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_attributes, original.num_attributes);
  EXPECT_DOUBLE_EQ(loaded.value().num_records, original.num_records);
  ASSERT_EQ(loaded.value().clusters, original.clusters);
  ASSERT_EQ(loaded.value().joints.size(), original.joints.size());
  for (size_t c = 0; c < original.joints.size(); ++c) {
    ASSERT_EQ(loaded.value().joints[c].size(), original.joints[c].size());
    for (size_t k = 0; k < original.joints[c].size(); ++k) {
      // %.17g round-trips doubles exactly.
      EXPECT_DOUBLE_EQ(loaded.value().joints[c][k], original.joints[c][k]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, QueriesThroughSerializedEstimatesMatchLive) {
  Dataset ds = SynthesizeAdult(5000, 5);
  RrClustersResult protocol = MakeProtocolResult(ds);

  std::string path = ::testing::TempDir() + "/mdrr_estimates_query.txt";
  ASSERT_TRUE(
      WriteClusterEstimates(EstimatesFromResult(protocol), path).ok());
  auto loaded = ReadClusterEstimates(path);
  ASSERT_TRUE(loaded.ok());
  auto revived = MakeEstimateFromSerialized(loaded.value(), ds);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();

  ClusterFactorizationEstimate live = MakeClusterEstimate(protocol);
  CountQuery query;
  query.attributes = {kAdultRelationship, kAdultSex};
  query.tuples = {{2, 1}, {0, 0}};
  EXPECT_NEAR(revived.value().EstimateCount(query),
              live.EstimateCount(query), 1e-9);
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsCorruptFiles) {
  std::string path = ::testing::TempDir() + "/mdrr_estimates_corrupt.txt";
  {
    std::ofstream file(path);
    file << "not an estimates file\n";
  }
  EXPECT_FALSE(ReadClusterEstimates(path).ok());

  {
    std::ofstream file(path);
    file << "mdrr-estimates v1\nattributes 3\nn 100\nclusters 1\n";
    // Missing cluster and joint lines.
  }
  EXPECT_FALSE(ReadClusterEstimates(path).ok());

  {
    std::ofstream file(path);
    file << "mdrr-estimates v1\nattributes 2\nn 100\nclusters 1\n"
         << "cluster 0 7\n"  // Index 7 out of range for 2 attributes.
         << "joint 0.5 0.5\n";
  }
  EXPECT_FALSE(ReadClusterEstimates(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, RejectsMissingFile) {
  EXPECT_FALSE(ReadClusterEstimates("/nonexistent/estimates.txt").ok());
}

TEST(SerializationTest, SchemaMismatchDetected) {
  Dataset ds = SynthesizeAdult(1000, 9);
  ClusterEstimates estimates = EstimatesFromResult(MakeProtocolResult(ds));

  // Wrong attribute count.
  Dataset projected = ds.Project({0, 1, 2});
  EXPECT_FALSE(MakeEstimateFromSerialized(estimates, projected).ok());

  // Tampered joint size.
  ClusterEstimates tampered = estimates;
  tampered.joints[0].push_back(0.0);
  EXPECT_FALSE(MakeEstimateFromSerialized(tampered, ds).ok());

  // Non-positive record count.
  ClusterEstimates zero_n = estimates;
  zero_n.num_records = 0;
  EXPECT_FALSE(MakeEstimateFromSerialized(zero_n, ds).ok());
}

}  // namespace
}  // namespace mdrr
