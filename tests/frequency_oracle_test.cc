#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

std::vector<double> TestDistribution(size_t r, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pi(r);
  double total = 0.0;
  for (double& x : pi) {
    x = rng.UniformDouble() + 0.05;
    total += x;
  }
  for (double& x : pi) x /= total;
  return pi;
}

TEST(DirectEncodingTest, EstimatesAreUnbiased) {
  const size_t r = 6;
  const double eps = 2.0;
  DirectEncodingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, 3);

  Rng rng(5);
  const int n = 200000;
  std::vector<uint32_t> reports(n);
  for (int i = 0; i < n; ++i) {
    uint32_t truth = static_cast<uint32_t>(rng.Discrete(pi));
    reports[i] = oracle.Randomize(truth, rng);
  }
  auto estimates = oracle.EstimateFrequencies(reports);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_NEAR(estimates.value()[v], pi[v], 0.01) << "category " << v;
  }
}

TEST(DirectEncodingTest, MatchesEquationTwoEstimator) {
  // The closed-form (lambda - q)/(p - q) must agree with the general
  // Eq. (2) machinery on the same matrix.
  const size_t r = 5;
  const double eps = 1.5;
  DirectEncodingOracle oracle(r, eps);
  RrMatrix matrix = RrMatrix::OptimalForEpsilon(r, eps);

  Rng rng(7);
  std::vector<uint32_t> reports(5000);
  for (auto& x : reports) x = static_cast<uint32_t>(rng.UniformInt(r));
  auto fast = oracle.EstimateFrequencies(reports);
  ASSERT_TRUE(fast.ok());
  auto general =
      EstimateDistribution(matrix, EmpiricalDistribution(reports, r));
  ASSERT_TRUE(general.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_NEAR(fast.value()[v], general.value()[v], 1e-10);
  }
}

TEST(DirectEncodingTest, RejectsEmptyReports) {
  DirectEncodingOracle oracle(4, 1.0);
  EXPECT_FALSE(oracle.EstimateFrequencies({}).ok());
}

TEST(UnaryEncodingTest, SymmetricParameters) {
  UnaryEncodingOracle sue(8, 2.0, UnaryEncodingOracle::Variant::kSymmetric);
  double half = std::exp(1.0);
  EXPECT_NEAR(sue.p(), half / (half + 1.0), 1e-12);
  EXPECT_NEAR(sue.q(), 1.0 - sue.p(), 1e-12);
}

TEST(UnaryEncodingTest, OptimizedParameters) {
  UnaryEncodingOracle oue(8, 2.0, UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_DOUBLE_EQ(oue.p(), 0.5);
  EXPECT_NEAR(oue.q(), 1.0 / (std::exp(2.0) + 1.0), 1e-12);
}

TEST(UnaryEncodingTest, ReportPrivacyRatioBounded) {
  // Worst-case report-probability ratio between two true values must not
  // exceed e^eps: the flipped pair of bits contributes
  // (p / q) * ((1-q) / (1-p)).
  for (double eps : {0.5, 1.0, 3.0}) {
    for (auto variant : {UnaryEncodingOracle::Variant::kSymmetric,
                         UnaryEncodingOracle::Variant::kOptimized}) {
      UnaryEncodingOracle oracle(10, eps, variant);
      double ratio = (oracle.p() / oracle.q()) *
                     ((1.0 - oracle.q()) / (1.0 - oracle.p()));
      EXPECT_LE(std::log(ratio), eps + 1e-9);
      // Both variants are tight (equality).
      EXPECT_NEAR(std::log(ratio), eps, 1e-9);
    }
  }
}

class UnaryEncodingSweep
    : public ::testing::TestWithParam<
          std::tuple<size_t, double, UnaryEncodingOracle::Variant>> {};

// Property: unary-encoding estimates converge to the true distribution
// for every (domain size, epsilon, variant) combination.
TEST_P(UnaryEncodingSweep, EstimatesAreUnbiased) {
  auto [r, eps, variant] = GetParam();
  UnaryEncodingOracle oracle(r, eps, variant);
  std::vector<double> pi = TestDistribution(r, r * 17);

  Rng rng(r * 31 + static_cast<uint64_t>(eps * 10));
  const int n = 150000;
  std::vector<int64_t> bit_counts(r, 0);
  for (int i = 0; i < n; ++i) {
    uint32_t truth = static_cast<uint32_t>(rng.Discrete(pi));
    std::vector<uint8_t> report = oracle.Randomize(truth, rng);
    for (size_t v = 0; v < r; ++v) bit_counts[v] += report[v];
  }
  auto estimates = oracle.EstimateFrequencies(bit_counts, n);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_NEAR(estimates.value()[v], pi[v], 0.02)
        << "r=" << r << " eps=" << eps << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndEpsilons, UnaryEncodingSweep,
    ::testing::Combine(
        ::testing::Values<size_t>(4, 16, 64),
        ::testing::Values(1.0, 3.0),
        ::testing::Values(UnaryEncodingOracle::Variant::kSymmetric,
                          UnaryEncodingOracle::Variant::kOptimized)));

TEST(UnaryEncodingTest, EstimateFromReports) {
  UnaryEncodingOracle oracle(3, 5.0,
                             UnaryEncodingOracle::Variant::kOptimized);
  Rng rng(41);
  std::vector<std::vector<uint8_t>> reports;
  for (int i = 0; i < 20000; ++i) {
    reports.push_back(oracle.Randomize(0, rng));
  }
  auto estimates = oracle.EstimateFromReports(reports);
  ASSERT_TRUE(estimates.ok());
  EXPECT_NEAR(estimates.value()[0], 1.0, 0.03);
  EXPECT_NEAR(estimates.value()[1], 0.0, 0.03);
}

TEST(UnaryEncodingTest, InputValidation) {
  UnaryEncodingOracle oracle(3, 1.0,
                             UnaryEncodingOracle::Variant::kSymmetric);
  EXPECT_FALSE(oracle.EstimateFrequencies({1, 2}, 10).ok());
  EXPECT_FALSE(oracle.EstimateFrequencies({1, 2, 3}, 0).ok());
  EXPECT_FALSE(oracle.EstimateFromReports({}).ok());
  EXPECT_FALSE(oracle.EstimateFromReports({{1, 0}}).ok());
}

TEST(OracleComparisonTest, VarianceCrossoverInDomainSize) {
  // The classic Wang et al. result: DE beats OUE for small r (at fixed
  // eps, roughly r < 3 e^eps + 2), OUE wins for large r because its
  // variance does not depend on r.
  const double eps = 1.0;
  const int64_t n = 10000;
  const double pi_v = 0.1;

  DirectEncodingOracle de_small(3, eps);
  UnaryEncodingOracle oue_small(3, eps,
                                UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_LT(de_small.TheoreticalVariance(pi_v, n),
            oue_small.TheoreticalVariance(pi_v, n));

  DirectEncodingOracle de_large(256, eps);
  UnaryEncodingOracle oue_large(256, eps,
                                UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_GT(de_large.TheoreticalVariance(pi_v, n),
            oue_large.TheoreticalVariance(pi_v, n));
}

TEST(OracleComparisonTest, OueBeatsSueAtEqualEpsilon) {
  const double eps = 1.0;
  const int64_t n = 10000;
  UnaryEncodingOracle sue(32, eps, UnaryEncodingOracle::Variant::kSymmetric);
  UnaryEncodingOracle oue(32, eps, UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_LT(oue.TheoreticalVariance(0.05, n),
            sue.TheoreticalVariance(0.05, n));
}

TEST(OracleComparisonTest, TheoreticalVarianceMatchesEmpirical) {
  const size_t r = 8;
  const double eps = 1.5;
  const int n = 5000;
  const int replications = 400;
  DirectEncodingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, 51);

  Rng rng(53);
  std::vector<double> estimates_of_first;
  for (int rep = 0; rep < replications; ++rep) {
    std::vector<uint32_t> reports(n);
    for (int i = 0; i < n; ++i) {
      reports[i] =
          oracle.Randomize(static_cast<uint32_t>(rng.Discrete(pi)), rng);
    }
    auto est = oracle.EstimateFrequencies(reports);
    ASSERT_TRUE(est.ok());
    estimates_of_first.push_back(est.value()[0]);
  }
  double mean = 0.0;
  for (double e : estimates_of_first) mean += e;
  mean /= replications;
  double variance = 0.0;
  for (double e : estimates_of_first) variance += (e - mean) * (e - mean);
  variance /= replications;
  double predicted = oracle.TheoreticalVariance(pi[0], n);
  EXPECT_NEAR(variance, predicted, 0.3 * predicted);
}

}  // namespace
}  // namespace mdrr
