#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

std::vector<double> TestDistribution(size_t r, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pi(r);
  double total = 0.0;
  for (double& x : pi) {
    x = rng.UniformDouble() + 0.05;
    total += x;
  }
  for (double& x : pi) x /= total;
  return pi;
}

TEST(DirectEncodingTest, EstimatesAreUnbiased) {
  const size_t r = 6;
  const double eps = 2.0;
  DirectEncodingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, 3);

  Rng rng(5);
  const int n = 200000;
  std::vector<uint32_t> reports(n);
  for (int i = 0; i < n; ++i) {
    uint32_t truth = static_cast<uint32_t>(rng.Discrete(pi));
    reports[i] = oracle.Randomize(truth, rng);
  }
  auto estimates = oracle.EstimateFrequencies(reports);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_NEAR(estimates.value()[v], pi[v], 0.01) << "category " << v;
  }
}

TEST(DirectEncodingTest, MatchesEquationTwoEstimator) {
  // The direct-encoding oracle IS the structured Eq. (2) estimator:
  // EstimateFromLambda delegates to core/estimator's EstimateDistribution
  // on the wrapped matrix, so the two must agree bit for bit -- there is
  // exactly one closed-form RR estimator in the codebase.
  const size_t r = 5;
  const double eps = 1.5;
  DirectEncodingOracle oracle(r, eps);
  RrMatrix matrix = RrMatrix::OptimalForEpsilon(r, eps);

  Rng rng(7);
  std::vector<uint32_t> reports(5000);
  for (auto& x : reports) x = static_cast<uint32_t>(rng.UniformInt(r));
  auto fast = oracle.EstimateFrequencies(reports);
  ASSERT_TRUE(fast.ok());
  auto general =
      EstimateDistribution(matrix, EmpiricalDistribution(reports, r));
  ASSERT_TRUE(general.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_EQ(fast.value()[v], general.value()[v]) << "category " << v;
  }
}

TEST(DirectEncodingTest, AccumulateRangeMatchesPerRecordRandomize) {
  // The batched entry point must consume draws exactly like a hand
  // written per-record loop: same Rng seed, same codes, same counts.
  const size_t r = 7;
  const double eps = 1.2;
  DirectEncodingOracle oracle(r, eps);
  Rng loop_rng(91);
  std::vector<uint32_t> input(4096);
  for (auto& x : input) x = static_cast<uint32_t>(loop_rng.UniformInt(r));

  Rng a(17);
  std::vector<uint32_t> expected(input.size());
  std::vector<int64_t> expected_counts(r, 0);
  for (size_t i = 0; i < input.size(); ++i) {
    expected[i] = oracle.Randomize(input[i], a);
    ++expected_counts[expected[i]];
  }

  Rng b(17);
  std::vector<uint32_t> batched(input.size());
  std::vector<int64_t> batched_counts(r, 0);
  oracle.AccumulateRange(input, 0, input.size(), b, batched.data(),
                         batched_counts.data());
  EXPECT_EQ(expected, batched);
  EXPECT_EQ(expected_counts, batched_counts);
}

TEST(DirectEncodingTest, RejectsEmptyReports) {
  DirectEncodingOracle oracle(4, 1.0);
  EXPECT_FALSE(oracle.EstimateFrequencies({}).ok());
}

TEST(UnaryEncodingTest, SymmetricParameters) {
  UnaryEncodingOracle sue(8, 2.0, UnaryEncodingOracle::Variant::kSymmetric);
  double half = std::exp(1.0);
  EXPECT_NEAR(sue.p(), half / (half + 1.0), 1e-12);
  EXPECT_NEAR(sue.q(), 1.0 - sue.p(), 1e-12);
}

TEST(UnaryEncodingTest, OptimizedParameters) {
  UnaryEncodingOracle oue(8, 2.0, UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_DOUBLE_EQ(oue.p(), 0.5);
  EXPECT_NEAR(oue.q(), 1.0 / (std::exp(2.0) + 1.0), 1e-12);
}

TEST(UnaryEncodingTest, ReportPrivacyRatioBounded) {
  // Worst-case report-probability ratio between two true values must not
  // exceed e^eps: the flipped pair of bits contributes
  // (p / q) * ((1-q) / (1-p)).
  for (double eps : {0.5, 1.0, 3.0}) {
    for (auto variant : {UnaryEncodingOracle::Variant::kSymmetric,
                         UnaryEncodingOracle::Variant::kOptimized}) {
      UnaryEncodingOracle oracle(10, eps, variant);
      double ratio = (oracle.p() / oracle.q()) *
                     ((1.0 - oracle.q()) / (1.0 - oracle.p()));
      EXPECT_LE(std::log(ratio), eps + 1e-9);
      // Both variants are tight (equality).
      EXPECT_NEAR(std::log(ratio), eps, 1e-9);
    }
  }
}

class UnaryEncodingSweep
    : public ::testing::TestWithParam<
          std::tuple<size_t, double, UnaryEncodingOracle::Variant>> {};

// Property: unary-encoding estimates converge to the true distribution
// for every (domain size, epsilon, variant) combination.
TEST_P(UnaryEncodingSweep, EstimatesAreUnbiased) {
  auto [r, eps, variant] = GetParam();
  UnaryEncodingOracle oracle(r, eps, variant);
  std::vector<double> pi = TestDistribution(r, r * 17);

  Rng rng(r * 31 + static_cast<uint64_t>(eps * 10));
  const int n = 150000;
  std::vector<int64_t> bit_counts(r, 0);
  for (int i = 0; i < n; ++i) {
    uint32_t truth = static_cast<uint32_t>(rng.Discrete(pi));
    std::vector<uint8_t> report = oracle.Randomize(truth, rng);
    for (size_t v = 0; v < r; ++v) bit_counts[v] += report[v];
  }
  auto estimates = oracle.EstimateFrequencies(bit_counts, n);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    EXPECT_NEAR(estimates.value()[v], pi[v], 0.02)
        << "r=" << r << " eps=" << eps << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndEpsilons, UnaryEncodingSweep,
    ::testing::Combine(
        ::testing::Values<size_t>(4, 16, 64),
        ::testing::Values(1.0, 3.0),
        ::testing::Values(UnaryEncodingOracle::Variant::kSymmetric,
                          UnaryEncodingOracle::Variant::kOptimized)));

TEST(UnaryEncodingTest, EstimateFromReports) {
  UnaryEncodingOracle oracle(3, 5.0,
                             UnaryEncodingOracle::Variant::kOptimized);
  Rng rng(41);
  std::vector<std::vector<uint8_t>> reports;
  for (int i = 0; i < 20000; ++i) {
    reports.push_back(oracle.Randomize(0, rng));
  }
  auto estimates = oracle.EstimateFromReports(reports);
  ASSERT_TRUE(estimates.ok());
  EXPECT_NEAR(estimates.value()[0], 1.0, 0.03);
  EXPECT_NEAR(estimates.value()[1], 0.0, 0.03);
}

TEST(UnaryEncodingTest, InputValidation) {
  UnaryEncodingOracle oracle(3, 1.0,
                             UnaryEncodingOracle::Variant::kSymmetric);
  EXPECT_FALSE(oracle.EstimateFrequencies({1, 2}, 10).ok());
  EXPECT_FALSE(oracle.EstimateFrequencies({1, 2, 3}, 0).ok());
  EXPECT_FALSE(oracle.EstimateFromReports({}).ok());
  EXPECT_FALSE(oracle.EstimateFromReports({{1, 0}}).ok());
}

TEST(LocalHashingTest, BucketCountTracksEpsilon) {
  // g = floor(e^eps) + 1, clamped to [2, 2^20].
  EXPECT_EQ(LocalHashingOracle(16, 0.5).num_buckets(), 2u);
  EXPECT_EQ(LocalHashingOracle(16, 1.0).num_buckets(), 3u);
  EXPECT_EQ(LocalHashingOracle(16, 2.0).num_buckets(), 8u);
  EXPECT_EQ(LocalHashingOracle(16, 100.0).num_buckets(), 1u << 20);
}

TEST(LocalHashingTest, HashBucketIsDeterministicAndInRange) {
  const size_t g = 8;
  for (uint64_t seed : {0ull, 1ull, 0xdeadbeefull}) {
    for (uint32_t v = 0; v < 64; ++v) {
      uint32_t bucket = LocalHashingOracle::HashBucket(seed, v, g);
      EXPECT_LT(bucket, g);
      EXPECT_EQ(bucket, LocalHashingOracle::HashBucket(seed, v, g));
    }
  }
}

class LocalHashingSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double, int>> {};

// Property: OLH support-count estimates converge to the true
// distribution, with per-category error within a few theoretical
// standard deviations, for every (domain size, epsilon, n).
TEST_P(LocalHashingSweep, EstimatesAreUnbiasedWithinTheoreticalVariance) {
  auto [r, eps, n] = GetParam();
  LocalHashingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, r * 13 + 1);

  Rng rng(r * 101 + static_cast<uint64_t>(eps * 10) + n);
  std::vector<uint32_t> truths(n);
  for (auto& x : truths) x = static_cast<uint32_t>(rng.Discrete(pi));
  std::vector<int64_t> counts(r, 0);
  oracle.AccumulateRange(truths, 0, truths.size(), rng, /*out=*/nullptr,
                         counts.data());
  auto estimates = oracle.EstimateFrequencies(counts, n);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    const double sigma = std::sqrt(oracle.TheoreticalVariance(pi[v], n));
    EXPECT_NEAR(estimates.value()[v], pi[v], 5.0 * sigma + 1e-9)
        << "r=" << r << " eps=" << eps << " n=" << n << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsEpsilonsSamples, LocalHashingSweep,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 64),
                       ::testing::Values(1.0, 3.0),
                       ::testing::Values(60000, 150000)));

TEST(LocalHashingTest, CounterPathIsShardInvariant) {
  // Philox element addressing: counts from one [0, n) sweep must equal
  // counts accumulated over any tiling of the same range, because each
  // record's two elements are addressed by record index, not by
  // consumption order.
  const size_t r = 12;
  LocalHashingOracle oracle(r, 2.0);
  Rng rng(7);
  std::vector<uint32_t> truths(5000);
  for (auto& x : truths) x = static_cast<uint32_t>(rng.UniformInt(r));

  std::vector<int64_t> whole(r, 0);
  oracle.AccumulateRangeCounter(truths, 0, truths.size(), /*seed=*/99,
                                /*stream=*/3, /*out=*/nullptr, whole.data());
  std::vector<int64_t> tiled(r, 0);
  for (size_t begin = 0; begin < truths.size(); begin += 317) {
    const size_t end = std::min(truths.size(), begin + 317);
    oracle.AccumulateRangeCounter(truths, begin, end, /*seed=*/99,
                                  /*stream=*/3, /*out=*/nullptr,
                                  tiled.data());
  }
  EXPECT_EQ(whole, tiled);
}

TEST(LocalHashingTest, CounterPathEstimatesAreUnbiased) {
  const size_t r = 16;
  const double eps = 2.0;
  const int n = 120000;
  LocalHashingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, 29);
  Rng rng(31);
  std::vector<uint32_t> truths(n);
  for (auto& x : truths) x = static_cast<uint32_t>(rng.Discrete(pi));

  std::vector<int64_t> counts(r, 0);
  oracle.AccumulateRangeCounter(truths, 0, truths.size(), /*seed=*/5,
                                /*stream=*/1, /*out=*/nullptr, counts.data());
  auto estimates = oracle.EstimateFrequencies(counts, n);
  ASSERT_TRUE(estimates.ok());
  for (size_t v = 0; v < r; ++v) {
    const double sigma = std::sqrt(oracle.TheoreticalVariance(pi[v], n));
    EXPECT_NEAR(estimates.value()[v], pi[v], 5.0 * sigma + 1e-9) << v;
  }
}

TEST(OracleComparisonTest, VarianceCrossoverInDomainSize) {
  // The classic Wang et al. result: DE beats OUE for small r (at fixed
  // eps, roughly r < 3 e^eps + 2), OUE wins for large r because its
  // variance does not depend on r.
  const double eps = 1.0;
  const int64_t n = 10000;
  const double pi_v = 0.1;

  DirectEncodingOracle de_small(3, eps);
  UnaryEncodingOracle oue_small(3, eps,
                                UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_LT(de_small.TheoreticalVariance(pi_v, n),
            oue_small.TheoreticalVariance(pi_v, n));

  DirectEncodingOracle de_large(256, eps);
  UnaryEncodingOracle oue_large(256, eps,
                                UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_GT(de_large.TheoreticalVariance(pi_v, n),
            oue_large.TheoreticalVariance(pi_v, n));
}

TEST(OracleComparisonTest, OueBeatsSueAtEqualEpsilon) {
  const double eps = 1.0;
  const int64_t n = 10000;
  UnaryEncodingOracle sue(32, eps, UnaryEncodingOracle::Variant::kSymmetric);
  UnaryEncodingOracle oue(32, eps, UnaryEncodingOracle::Variant::kOptimized);
  EXPECT_LT(oue.TheoreticalVariance(0.05, n),
            sue.TheoreticalVariance(0.05, n));
}

TEST(OracleComparisonTest, OlhBeatsDirectEncodingAtLargeDomains) {
  // OLH's variance is independent of r (like OUE), so it must win over
  // DE once the domain outgrows the epsilon budget.
  const double eps = 1.0;
  const int64_t n = 10000;
  DirectEncodingOracle de(256, eps);
  LocalHashingOracle olh(256, eps);
  EXPECT_LT(olh.TheoreticalVariance(0.05, n),
            de.TheoreticalVariance(0.05, n));
}

TEST(OracleFactoryTest, BuildsEveryBackend) {
  for (OracleBackend backend :
       {OracleBackend::kDirect, OracleBackend::kSymmetricUnary,
        OracleBackend::kOptimizedUnary, OracleBackend::kLocalHashing}) {
    auto oracle = MakeFrequencyOracle(backend, 8, 1.5);
    ASSERT_TRUE(oracle.ok()) << ToString(backend);
    EXPECT_EQ(oracle.value()->backend(), backend);
    EXPECT_EQ(oracle.value()->domain_size(), 8u);
    EXPECT_EQ(oracle.value()->produces_microdata(),
              backend == OracleBackend::kDirect);
    // Round trip through the spec token.
    auto parsed = OracleBackendFromString(ToString(backend));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), backend);
  }
}

TEST(OracleFactoryTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeFrequencyOracle(OracleBackend::kDirect, 1, 1.0).ok());
  EXPECT_FALSE(MakeFrequencyOracle(OracleBackend::kLocalHashing, 8, 0.0).ok());
  EXPECT_FALSE(
      MakeFrequencyOracle(OracleBackend::kOptimizedUnary, 8, -1.0).ok());
  EXPECT_FALSE(OracleBackendFromString("rappor").ok());
}

TEST(OracleComparisonTest, TheoreticalVarianceMatchesEmpirical) {
  const size_t r = 8;
  const double eps = 1.5;
  const int n = 5000;
  const int replications = 400;
  DirectEncodingOracle oracle(r, eps);
  std::vector<double> pi = TestDistribution(r, 51);

  Rng rng(53);
  std::vector<double> estimates_of_first;
  for (int rep = 0; rep < replications; ++rep) {
    std::vector<uint32_t> reports(n);
    for (int i = 0; i < n; ++i) {
      reports[i] =
          oracle.Randomize(static_cast<uint32_t>(rng.Discrete(pi)), rng);
    }
    auto est = oracle.EstimateFrequencies(reports);
    ASSERT_TRUE(est.ok());
    estimates_of_first.push_back(est.value()[0]);
  }
  double mean = 0.0;
  for (double e : estimates_of_first) mean += e;
  mean /= replications;
  double variance = 0.0;
  for (double e : estimates_of_first) variance += (e - mean) * (e - mean);
  variance /= replications;
  double predicted = oracle.TheoreticalVariance(pi[0], n);
  EXPECT_NEAR(variance, predicted, 0.3 * predicted);
}

}  // namespace
}  // namespace mdrr
