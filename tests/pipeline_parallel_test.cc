// Thread-count invariance of the full sharded release pipeline: every
// stage (dependence assessment, adjustment, synthetic release, the
// party-level session, and the engine-driven composition of all of
// them) must produce bit-identical output at 1/2/4/8 workers for a
// fixed seed. Plus a regression pinning the fused Algorithm 2 rewrite
// to the sequential seed implementation's convergence behavior.

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/core/dependence.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/protocol/session.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

void ExpectSameDataset(const Dataset& a, const Dataset& b,
                       const char* what) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << what;
  ASSERT_EQ(a.num_attributes(), b.num_attributes()) << what;
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j)) << what << " column " << j;
  }
}

void ExpectSameMatrix(const linalg::Matrix& a, const linalg::Matrix& b,
                      const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << what << " cell " << i << "," << j;
    }
  }
}

// --- Dependence assessment ---

TEST(ParallelDependenceTest, ShardedMatrixBitIdenticalAcrossThreads) {
  Dataset data = SynthesizeAdult(3000, 2020);
  DependenceShardingOptions baseline_options;
  baseline_options.num_threads = 1;
  baseline_options.record_chunk_size = 256;
  linalg::Matrix baseline = DependenceMatrixSharded(
      data, DependenceMeasure::kPaperAuto, baseline_options);
  for (size_t threads : kThreadSweep) {
    DependenceShardingOptions options;
    options.num_threads = threads;
    options.record_chunk_size = 256;
    linalg::Matrix run =
        DependenceMatrixSharded(data, DependenceMeasure::kPaperAuto, options);
    ExpectSameMatrix(baseline, run, "dependences");
  }
}

TEST(ParallelDependenceTest, ChunkSizeNeverChangesTheMatrix) {
  // Joint counts are integers, so unlike the double reductions the
  // dependence matrix is invariant to the chunk grain too.
  Dataset data = SynthesizeAdult(1500, 7);
  DependenceShardingOptions a_options;
  a_options.num_threads = 4;
  a_options.record_chunk_size = 64;
  DependenceShardingOptions b_options;
  b_options.num_threads = 2;
  b_options.record_chunk_size = 1 << 16;
  ExpectSameMatrix(
      DependenceMatrixSharded(data, DependenceMeasure::kPaperAuto, a_options),
      DependenceMatrixSharded(data, DependenceMeasure::kPaperAuto, b_options),
      "dependences");
}

TEST(ParallelDependenceTest, MatchesSequentialStatistics) {
  Dataset data = SynthesizeAdult(2000, 11);
  DependenceShardingOptions options;
  options.num_threads = 4;
  options.record_chunk_size = 512;
  linalg::Matrix sharded =
      DependenceMatrixSharded(data, DependenceMeasure::kPaperAuto, options);
  linalg::Matrix sequential = DependenceMatrix(data);
  for (size_t i = 0; i < sharded.rows(); ++i) {
    for (size_t j = 0; j < sharded.cols(); ++j) {
      // Cramér's V pairs are bitwise equal; ordinal-ordinal |Pearson| is
      // evaluated from the joint table and may differ in the last ulps.
      EXPECT_NEAR(sharded(i, j), sequential(i, j), 1e-9)
          << "cell " << i << "," << j;
    }
  }
}

TEST(ParallelDependenceTest, EveryMeasureIsThreadCountInvariant) {
  Dataset data = SynthesizeAdult(800, 3);
  for (DependenceMeasure measure :
       {DependenceMeasure::kPaperAuto, DependenceMeasure::kCramersV,
        DependenceMeasure::kAbsPearson,
        DependenceMeasure::kNormalizedMutualInformation}) {
    DependenceShardingOptions one;
    one.num_threads = 1;
    one.record_chunk_size = 128;
    linalg::Matrix baseline = DependenceMatrixSharded(data, measure, one);
    DependenceShardingOptions many;
    many.num_threads = 8;
    many.record_chunk_size = 128;
    ExpectSameMatrix(baseline, DependenceMatrixSharded(data, measure, many),
                     "measure matrix");
  }
}

TEST(ParallelDependenceTest, RandomizedResponseShardedIsDeterministic) {
  Dataset data = SynthesizeAdult(1200, 5);
  DependenceShardingOptions one;
  one.num_threads = 1;
  DependenceEstimate baseline =
      RandomizedResponseDependencesSharded(data, 0.7, 99, one);
  for (size_t threads : kThreadSweep) {
    DependenceShardingOptions options;
    options.num_threads = threads;
    DependenceEstimate run =
        RandomizedResponseDependencesSharded(data, 0.7, 99, options);
    EXPECT_EQ(baseline.epsilon, run.epsilon);
    ExpectSameMatrix(baseline.dependences, run.dependences, "rr dependences");
  }
}

// --- Adjustment ---

// The sequential seed implementation of Algorithm 2, kept verbatim as
// the behavioral reference for the fused rewrite.
AdjustmentResult ReferenceAdjustment(const std::vector<AdjustmentGroup>& groups,
                                     size_t num_records,
                                     const AdjustmentOptions& options) {
  AdjustmentResult result;
  result.weights.assign(num_records, 1.0 / static_cast<double>(num_records));
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (const AdjustmentGroup& group : groups) {
      std::vector<double> implied(group.target.size(), 0.0);
      for (size_t i = 0; i < num_records; ++i) {
        implied[group.codes[i]] += result.weights[i];
      }
      std::vector<double> ratio(group.target.size(), 1.0);
      for (size_t v = 0; v < ratio.size(); ++v) {
        if (implied[v] > 0.0) ratio[v] = group.target[v] / implied[v];
      }
      for (size_t i = 0; i < num_records; ++i) {
        result.weights[i] *= ratio[group.codes[i]];
      }
      double total = 0.0;
      for (double w : result.weights) total += w;
      for (double& w : result.weights) w /= total;
    }
    result.iterations = iter + 1;
    double max_gap = 0.0;
    for (const AdjustmentGroup& group : groups) {
      std::vector<double> implied(group.target.size(), 0.0);
      for (size_t i = 0; i < num_records; ++i) {
        implied[group.codes[i]] += result.weights[i];
      }
      for (size_t v = 0; v < implied.size(); ++v) {
        max_gap = std::max(max_gap, std::fabs(implied[v] - group.target[v]));
      }
    }
    result.max_marginal_gap = max_gap;
    if (max_gap < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<AdjustmentGroup> MakeAdjustmentGroups(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<AdjustmentGroup> groups(3);
  groups[0].target = {0.5, 0.3, 0.2};
  groups[1].target = {0.4, 0.6};
  groups[2].target = {0.25, 0.25, 0.25, 0.25};
  for (size_t i = 0; i < n; ++i) {
    groups[0].codes.push_back(static_cast<uint32_t>(rng.UniformInt(3)));
    groups[1].codes.push_back(static_cast<uint32_t>(rng.UniformInt(2)));
    groups[2].codes.push_back(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  return groups;
}

TEST(ParallelAdjustmentTest, WeightsBitIdenticalAcrossThreads) {
  const size_t n = 4000;
  std::vector<AdjustmentGroup> groups = MakeAdjustmentGroups(n, 17);
  AdjustmentOptions baseline_options;
  baseline_options.max_iterations = 200;
  baseline_options.tolerance = 1e-12;
  baseline_options.num_threads = 1;
  baseline_options.chunk_size = 256;
  auto baseline = RunRrAdjustment(groups, n, baseline_options);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : kThreadSweep) {
    AdjustmentOptions options = baseline_options;
    options.num_threads = threads;
    auto run = RunRrAdjustment(groups, n, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(baseline.value().weights, run.value().weights)
        << "threads=" << threads;
    EXPECT_EQ(baseline.value().iterations, run.value().iterations);
    EXPECT_EQ(baseline.value().max_marginal_gap,
              run.value().max_marginal_gap);
    EXPECT_EQ(baseline.value().converged, run.value().converged);
  }
}

TEST(ParallelAdjustmentTest, ConvergesInSameIterationCountAsReference) {
  // Representative workloads: consistent random targets, the paper's
  // Example 1 shape, and an unreachable-mass case.
  struct Case {
    std::vector<AdjustmentGroup> groups;
    size_t n;
  };
  std::vector<Case> cases;
  cases.push_back({MakeAdjustmentGroups(2500, 23), 2500});
  {
    std::vector<AdjustmentGroup> example(2);
    example[0].codes = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
    example[0].target = {0.5, 0.5};
    example[1].codes = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1};
    example[1].target = {0.5, 0.5};
    cases.push_back({example, 10});
  }
  {
    std::vector<AdjustmentGroup> unreachable(1);
    unreachable[0].codes = {0, 0, 0, 0};
    unreachable[0].target = {0.7, 0.3};
    cases.push_back({unreachable, 4});
  }

  for (size_t k = 0; k < cases.size(); ++k) {
    AdjustmentOptions options;
    options.max_iterations = 150;
    options.tolerance = 1e-10;
    options.num_threads = 4;
    options.chunk_size = 512;
    auto fused = RunRrAdjustment(cases[k].groups, cases[k].n, options);
    ASSERT_TRUE(fused.ok()) << "case " << k;
    AdjustmentResult reference =
        ReferenceAdjustment(cases[k].groups, cases[k].n, options);
    EXPECT_EQ(fused.value().iterations, reference.iterations)
        << "case " << k;
    EXPECT_EQ(fused.value().converged, reference.converged) << "case " << k;
    ASSERT_EQ(fused.value().weights.size(), reference.weights.size());
    for (size_t i = 0; i < reference.weights.size(); ++i) {
      EXPECT_NEAR(fused.value().weights[i], reference.weights[i], 1e-9)
          << "case " << k << " record " << i;
    }
    EXPECT_NEAR(fused.value().max_marginal_gap, reference.max_marginal_gap,
                1e-9)
        << "case " << k;
  }
}

// --- Synthetic release ---

TEST(ParallelSyntheticTest, ShardSplitMeetsBothMarginalsExactly) {
  std::vector<int64_t> counts = {5000, 1, 0, 2345, 17, 4637};
  const int64_t n =
      std::accumulate(counts.begin(), counts.end(), int64_t{0});
  const size_t shard_size = 1000;
  auto per_shard = ApportionCountsAcrossShards(counts, n, shard_size);
  std::vector<int64_t> category_totals(counts.size(), 0);
  for (size_t s = 0; s < per_shard.size(); ++s) {
    int64_t rows = 0;
    for (size_t c = 0; c < counts.size(); ++c) {
      EXPECT_GE(per_shard[s][c], 0);
      rows += per_shard[s][c];
      category_totals[c] += per_shard[s][c];
    }
    int64_t expected_rows = std::min<int64_t>(
        static_cast<int64_t>(shard_size),
        n - static_cast<int64_t>(s * shard_size));
    EXPECT_EQ(rows, expected_rows) << "shard " << s;
  }
  EXPECT_EQ(category_totals, counts);
}

TEST(ParallelSyntheticTest, ReleaseBitIdenticalAcrossThreads) {
  Dataset data = SynthesizeAdult(3000, 13);
  BatchPerturbationOptions engine_options;
  engine_options.seed = 4;
  engine_options.shard_size = 300;
  engine_options.num_threads = 1;
  BatchPerturbationEngine engine(engine_options);
  auto release = engine.RunIndependent(data, RrIndependentOptions{0.7});
  ASSERT_TRUE(release.ok());

  auto baseline = engine.SynthesizeIndependent(*release, 2500);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : kThreadSweep) {
    BatchPerturbationOptions options = engine_options;
    options.num_threads = threads;
    auto run = BatchPerturbationEngine(options).SynthesizeIndependent(
        *release, 2500);
    ASSERT_TRUE(run.ok());
    ExpectSameDataset(baseline.value(), run.value(), "synthetic");
  }
}

TEST(ParallelSyntheticTest, ShardedMarginalsMatchApportionedCounts) {
  // Per-shard apportionment must preserve the exact global counts the
  // sequential expansion would produce; only the record order differs.
  Dataset data = SynthesizeAdult(2000, 29);
  BatchPerturbationOptions engine_options;
  engine_options.seed = 6;
  engine_options.shard_size = 128;
  engine_options.num_threads = 4;
  BatchPerturbationEngine engine(engine_options);
  auto release = engine.RunIndependent(data, RrIndependentOptions{0.8});
  ASSERT_TRUE(release.ok());
  const int64_t n = 1777;
  auto synthetic = engine.SynthesizeIndependent(*release, n);
  ASSERT_TRUE(synthetic.ok());
  ASSERT_EQ(synthetic.value().num_rows(), static_cast<size_t>(n));
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    std::vector<int64_t> expected =
        ApportionCounts(release.value().estimated[j], n);
    std::vector<int64_t> got(expected.size(), 0);
    for (uint32_t code : synthetic.value().column(j)) ++got[code];
    EXPECT_EQ(got, expected) << "attribute " << j;
  }
}

TEST(ParallelSyntheticTest, ClustersReleaseBitIdenticalAcrossThreads) {
  Dataset data = SynthesizeAdult(2500, 31);
  BatchPerturbationOptions engine_options;
  engine_options.seed = 8;
  engine_options.shard_size = 250;
  engine_options.num_threads = 1;
  RrClustersOptions cluster_options;
  cluster_options.keep_probability = 0.75;
  auto release =
      BatchPerturbationEngine(engine_options).RunClusters(data,
                                                          cluster_options);
  ASSERT_TRUE(release.ok());
  auto baseline =
      BatchPerturbationEngine(engine_options).SynthesizeClusters(*release,
                                                                 2000);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : kThreadSweep) {
    BatchPerturbationOptions options = engine_options;
    options.num_threads = threads;
    auto run =
        BatchPerturbationEngine(options).SynthesizeClusters(*release, 2000);
    ASSERT_TRUE(run.ok());
    ExpectSameDataset(baseline.value(), run.value(), "cluster synthetic");
  }
}

// --- Party-level session ---

TEST(ParallelSessionTest, TranscriptBitIdenticalAcrossThreads) {
  Dataset data = SynthesizeAdult(1500, 37);
  protocol::SessionOptions baseline_options;
  baseline_options.seed = 21;
  baseline_options.clustering = ClusteringOptions{50.0, 0.1};
  baseline_options.num_threads = 1;
  baseline_options.shard_size = 200;
  auto baseline = protocol::RunDistributedSession(data, baseline_options);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : kThreadSweep) {
    protocol::SessionOptions options = baseline_options;
    options.num_threads = threads;
    auto run = protocol::RunDistributedSession(data, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(baseline.value().clusters, run.value().clusters);
    EXPECT_EQ(baseline.value().cluster_joints, run.value().cluster_joints);
    EXPECT_EQ(baseline.value().round1_epsilon, run.value().round1_epsilon);
    EXPECT_EQ(baseline.value().round2_epsilon, run.value().round2_epsilon);
    ExpectSameDataset(baseline.value().randomized, run.value().randomized,
                      "session Y");
  }
}

// --- Full pipeline through the engine ---

TEST(ParallelPipelineTest, EndToEndBitIdenticalAcrossThreads) {
  // The acceptance contract: perturb + assess + cluster + estimate +
  // adjust + synthesize, all through the engine, bit-identical at any
  // worker count.
  Dataset data = SynthesizeAdult(2000, 41);
  RrClustersOptions cluster_options;
  cluster_options.keep_probability = 0.7;
  cluster_options.dependence_source = DependenceSource::kRandomizedResponse;

  struct PipelineOutput {
    RrClustersResult release;
    AdjustmentResult adjustment;
    Dataset synthetic;
  };
  auto run_pipeline = [&](size_t threads) -> PipelineOutput {
    BatchPerturbationOptions options;
    options.seed = 12;
    options.shard_size = 200;
    options.num_threads = threads;
    BatchPerturbationEngine engine(options);
    auto release = engine.RunClusters(data, cluster_options);
    EXPECT_TRUE(release.ok());
    AdjustmentOptions adjustment_options;
    adjustment_options.max_iterations = 50;
    auto adjustment = engine.RunAdjustment(GroupsFromClusters(*release),
                                           data.num_rows(),
                                           adjustment_options);
    EXPECT_TRUE(adjustment.ok());
    auto synthetic = engine.SynthesizeClusters(*release, 1500);
    EXPECT_TRUE(synthetic.ok());
    return {std::move(release).value(), std::move(adjustment).value(),
            std::move(synthetic).value()};
  };

  PipelineOutput baseline = run_pipeline(1);
  for (size_t threads : kThreadSweep) {
    PipelineOutput run = run_pipeline(threads);
    ASSERT_EQ(baseline.release.clusters, run.release.clusters);
    ExpectSameMatrix(baseline.release.dependences, run.release.dependences,
                     "pipeline dependences");
    ExpectSameDataset(baseline.release.randomized, run.release.randomized,
                      "pipeline Y");
    for (size_t c = 0; c < baseline.release.cluster_results.size(); ++c) {
      EXPECT_EQ(baseline.release.cluster_results[c].estimated,
                run.release.cluster_results[c].estimated);
    }
    EXPECT_EQ(baseline.adjustment.weights, run.adjustment.weights);
    EXPECT_EQ(baseline.adjustment.iterations, run.adjustment.iterations);
    ExpectSameDataset(baseline.synthetic, run.synthetic,
                      "pipeline synthetic");
  }
}

}  // namespace
}  // namespace mdrr
