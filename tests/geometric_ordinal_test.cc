#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(GeometricOrdinalTest, RowStochasticAndDense) {
  RrMatrix m = RrMatrix::GeometricOrdinal(8, 2.0);
  EXPECT_TRUE(m.ToDense().IsRowStochastic(1e-9));
  EXPECT_FALSE(m.is_structured());  // Not a uniform mixture.
}

TEST(GeometricOrdinalTest, EpsilonIsExactlyTheBudget) {
  for (size_t r : {3u, 8u, 20u}) {
    for (double eps : {0.5, 2.0, 5.0}) {
      RrMatrix m = RrMatrix::GeometricOrdinal(r, eps);
      EXPECT_NEAR(m.Epsilon(), eps, 1e-9) << "r=" << r << " eps=" << eps;
    }
  }
}

TEST(GeometricOrdinalTest, ProbabilityDecaysWithDistance) {
  RrMatrix m = RrMatrix::GeometricOrdinal(6, 3.0);
  for (size_t u = 0; u < 6; ++u) {
    for (size_t v = 0; v + 1 < 6; ++v) {
      size_t d1 = u > v ? u - v : v - u;
      size_t d2 = u > v + 1 ? u - v - 1 : v + 1 - u;
      if (d1 < d2) {
        EXPECT_GT(m.Prob(u, v), m.Prob(u, v + 1)) << u << "," << v;
      } else if (d1 > d2) {
        EXPECT_LT(m.Prob(u, v), m.Prob(u, v + 1)) << u << "," << v;
      }
    }
  }
}

TEST(GeometricOrdinalTest, EstimationRecoversDistribution) {
  RrMatrix m = RrMatrix::GeometricOrdinal(5, 3.0);
  std::vector<double> pi = {0.35, 0.25, 0.2, 0.12, 0.08};
  Rng rng(3);
  const int n = 150000;
  std::vector<uint32_t> randomized(n);
  for (int i = 0; i < n; ++i) {
    randomized[i] =
        m.Randomize(static_cast<uint32_t>(rng.Discrete(pi)), rng);
  }
  std::vector<double> lambda = EmpiricalDistribution(randomized, 5);
  auto estimate = EstimateDistribution(m, lambda);
  ASSERT_TRUE(estimate.ok());
  for (size_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(estimate.value()[v], pi[v], 0.02) << "category " << v;
  }
}

TEST(GeometricOrdinalTest, DistanceGradedProtectionTradeoff) {
  // The design's contract is metric-privacy style: protection graded by
  // ordinal distance. Compare at EQUAL ADJACENT-CATEGORY protection
  // alpha: GeometricOrdinal(r, (r-1) alpha) vs KeepUniform at Expression
  // (4) epsilon = alpha (k-RR protects every pair, including adjacent
  // ones, at the same level, so alpha is its full budget).
  const size_t r = 10;
  const double alpha = 0.5;  // Nominal per-unit-distance budget.
  RrMatrix geometric =
      RrMatrix::GeometricOrdinal(r, alpha * static_cast<double>(r - 1));

  // Measure the geometric design's actual adjacent-category protection
  // (row normalization adds a bounded Z_max/Z_min factor on top of
  // e^{alpha}), then calibrate KeepUniform to exactly that level. k-RR
  // protects every pair -- adjacent included -- at its full Expression
  // (4) epsilon, so this makes the adjacent-pair contracts identical.
  auto adjacent_ratio = [&](const RrMatrix& m) {
    double worst = 1.0;
    for (size_t v = 0; v < r; ++v) {
      for (size_t u = 0; u + 1 < r; ++u) {
        double a = m.Prob(u, v);
        double b = m.Prob(u + 1, v);
        if (a > 0 && b > 0) {
          worst = std::max(worst, std::max(a / b, b / a));
        }
      }
    }
    return worst;
  };
  double alpha_geo = std::log(adjacent_ratio(geometric));
  // Normalization slack is bounded: alpha <= alpha_geo <= alpha + ln 2.
  EXPECT_GE(alpha_geo, alpha - 1e-9);
  EXPECT_LE(alpha_geo, alpha + std::log(2.0));

  double p =
      (std::exp(alpha_geo) - 1.0) / (std::exp(alpha_geo) - 1.0 + r);
  RrMatrix uniform = RrMatrix::KeepUniform(r, p);
  EXPECT_NEAR(uniform.Epsilon(), alpha_geo, 1e-9);
  EXPECT_NEAR(std::log(adjacent_ratio(uniform)), alpha_geo, 1e-9);

  // At that equal adjacent protection, the geometric design reports
  // values far closer to the truth and keeps the exact value more often.
  auto expected_distance = [&](const RrMatrix& m, uint32_t u) {
    double d = 0.0;
    for (size_t v = 0; v < r; ++v) {
      d += m.Prob(u, v) *
           std::fabs(static_cast<double>(v) - static_cast<double>(u));
    }
    return d;
  };
  EXPECT_LT(expected_distance(geometric, 5), expected_distance(uniform, 5));
  EXPECT_LT(expected_distance(geometric, 0), expected_distance(uniform, 0));
  EXPECT_GT(geometric.Prob(5, 5), uniform.Prob(5, 5));

  // The price: the geometric design's worst-case epsilon is (r-1) alpha,
  // far above its adjacent-pair level -- distant categories are less
  // protected.
  EXPECT_NEAR(geometric.Epsilon(), alpha * static_cast<double>(r - 1),
              1e-9);
  EXPECT_GT(geometric.Epsilon(), alpha_geo * 4);
}

TEST(GeometricOrdinalTest, ApproachesIdentityForLargeEpsilon) {
  RrMatrix m = RrMatrix::GeometricOrdinal(4, 30.0);
  for (size_t u = 0; u < 4; ++u) {
    EXPECT_GT(m.Prob(u, u), 0.99);
  }
}

}  // namespace
}  // namespace mdrr
