#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/eval/subset_query.h"
#include "mdrr/rng/rng.h"

namespace mdrr::eval {
namespace {

TEST(MetricsTest, AbsoluteError) {
  EXPECT_DOUBLE_EQ(AbsoluteError(10.0, 7.0), 3.0);
  EXPECT_DOUBLE_EQ(AbsoluteError(7.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(AbsoluteError(5.0, 5.0), 0.0);
}

TEST(MetricsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(12.0, 10.0), 0.2);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(RelativeError(1.0, 0.0)));
}

TEST(SubsetQueryTest, CoverageProportionRespected) {
  Dataset ds = SynthesizeAdult(100, 3);
  Rng rng(5);
  CountQuery query = GenerateCoverageQueryForAttributes(
      ds, {kAdultMaritalStatus, kAdultRelationship}, 0.5, rng);
  // |domain| = 7 * 6 = 42; sigma = 0.5 -> 21 combinations.
  EXPECT_EQ(query.tuples.size(), 21u);
}

TEST(SubsetQueryTest, TuplesAreDistinctAndInRange) {
  Dataset ds = SynthesizeAdult(100, 7);
  Rng rng(11);
  CountQuery query = GenerateCoverageQueryForAttributes(
      ds, {kAdultWorkclass, kAdultRace}, 0.3, rng);
  Domain domain({9, 5});
  std::set<uint64_t> seen;
  for (const auto& tuple : query.tuples) {
    ASSERT_EQ(tuple.size(), 2u);
    EXPECT_LT(tuple[0], 9u);
    EXPECT_LT(tuple[1], 5u);
    EXPECT_TRUE(seen.insert(domain.Encode(tuple)).second)
        << "duplicate tuple";
  }
}

TEST(SubsetQueryTest, MinimumOneTuple) {
  Dataset ds = SynthesizeAdult(50, 13);
  Rng rng(17);
  CountQuery query = GenerateCoverageQueryForAttributes(
      ds, {kAdultSex, kAdultIncome}, 0.01, rng);
  EXPECT_EQ(query.tuples.size(), 1u);
}

TEST(SubsetQueryTest, FullCoverageTakesWholeDomain) {
  Dataset ds = SynthesizeAdult(50, 19);
  Rng rng(23);
  CountQuery query = GenerateCoverageQueryForAttributes(
      ds, {kAdultSex, kAdultIncome}, 1.0, rng);
  EXPECT_EQ(query.tuples.size(), 4u);
}

TEST(SubsetQueryTest, RandomAttributesAreDistinctAndSorted) {
  Dataset ds = SynthesizeAdult(50, 29);
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    CountQuery query = GenerateCoverageQuery(ds, 0.1, 2, rng);
    ASSERT_EQ(query.attributes.size(), 2u);
    EXPECT_LT(query.attributes[0], query.attributes[1]);
    EXPECT_LT(query.attributes[1], ds.num_attributes());
  }
}

TEST(ExperimentTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kRandomized), "Randomized");
  EXPECT_STREQ(MethodName(Method::kRrIndependent), "RR-Ind");
  EXPECT_STREQ(MethodName(Method::kRrClustersAdjusted), "RR-Cluster+Adj");
}

TEST(ExperimentTest, RejectsNonPositiveRuns) {
  Dataset ds = SynthesizeAdult(100, 37);
  ExperimentConfig config;
  config.runs = 0;
  EXPECT_FALSE(RunCountQueryExperiment(ds, config).ok());
}

TEST(ExperimentTest, DeterministicInSeedAcrossThreadCounts) {
  Dataset ds = SynthesizeAdult(2000, 41);
  ExperimentConfig config;
  config.method = Method::kRrIndependent;
  config.keep_probability = 0.7;
  config.sigma = 0.2;
  config.runs = 8;
  config.seed = 99;

  config.threads = 1;
  auto serial = RunCountQueryExperiment(ds, config);
  ASSERT_TRUE(serial.ok());
  config.threads = 8;
  auto parallel = RunCountQueryExperiment(ds, config);
  ASSERT_TRUE(parallel.ok());
  EXPECT_DOUBLE_EQ(serial.value().median_absolute_error,
                   parallel.value().median_absolute_error);
  EXPECT_DOUBLE_EQ(serial.value().median_relative_error,
                   parallel.value().median_relative_error);
}

TEST(ExperimentTest, StrongRandomizationHurtsAccuracy) {
  // Figure 3's basic monotonicity: p = 0.1 gives worse RR-Ind relative
  // error than p = 0.9 at small coverage.
  Dataset ds = SynthesizeAdult(8000, 43);
  ExperimentConfig config;
  config.method = Method::kRrIndependent;
  config.sigma = 0.1;
  config.runs = 15;
  config.seed = 7;

  config.keep_probability = 0.1;
  auto weak = RunCountQueryExperiment(ds, config);
  ASSERT_TRUE(weak.ok());
  config.keep_probability = 0.9;
  auto strong = RunCountQueryExperiment(ds, config);
  ASSERT_TRUE(strong.ok());
  EXPECT_GT(weak.value().median_relative_error,
            strong.value().median_relative_error);
}

TEST(ExperimentTest, AllMethodsRunOnAdultSample) {
  Dataset ds = SynthesizeAdult(3000, 47);
  for (Method method :
       {Method::kRandomized, Method::kRrIndependent,
        Method::kRrIndependentAdjusted, Method::kRrClusters,
        Method::kRrClustersAdjusted}) {
    ExperimentConfig config;
    config.method = method;
    config.keep_probability = 0.7;
    config.clustering = ClusteringOptions{50.0, 0.1};
    config.adjustment.max_iterations = 20;
    config.sigma = 0.2;
    config.runs = 4;
    config.seed = 11;
    auto result = RunCountQueryExperiment(ds, config);
    ASSERT_TRUE(result.ok()) << MethodName(method) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result.value().runs, 4);
    EXPECT_GE(result.value().median_absolute_error, 0.0);
  }
}

}  // namespace
}  // namespace mdrr::eval
