#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/joint_estimate.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"

namespace mdrr {
namespace {

std::vector<Attribute> ThreeAttributeSchema() {
  return {
      Attribute{"A", AttributeType::kNominal, {"0", "1"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
  };
}

Dataset SmallDataset() {
  // Rows: (0,0,0) (0,1,0) (1,2,1) (1,2,0) (0,0,1) (1,1,1).
  return Dataset(ThreeAttributeSchema(),
                 {{0, 0, 1, 1, 0, 1}, {0, 1, 2, 2, 0, 1}, {0, 0, 1, 0, 1, 1}});
}

TEST(EmpiricalCountsTest, CountsExactMatches) {
  EmpiricalCounts counts(SmallDataset());
  CountQuery query;
  query.attributes = {0, 1};
  query.tuples = {{0, 0}};
  EXPECT_DOUBLE_EQ(counts.EstimateCount(query), 2.0);

  query.tuples = {{1, 2}, {0, 1}};
  EXPECT_DOUBLE_EQ(counts.EstimateCount(query), 3.0);
}

TEST(EmpiricalCountsTest, SingleAttributeAndFullRecordQueries) {
  EmpiricalCounts counts(SmallDataset());
  CountQuery marginal;
  marginal.attributes = {2};
  marginal.tuples = {{1}};
  EXPECT_DOUBLE_EQ(counts.EstimateCount(marginal), 3.0);

  CountQuery full;
  full.attributes = {0, 1, 2};
  full.tuples = {{1, 2, 1}};
  EXPECT_DOUBLE_EQ(counts.EstimateCount(full), 1.0);
}

TEST(EmpiricalCountsTest, EmptyTupleListIsZero) {
  EmpiricalCounts counts(SmallDataset());
  CountQuery query;
  query.attributes = {0};
  EXPECT_DOUBLE_EQ(counts.EstimateCount(query), 0.0);
}

TEST(IndependentMarginalsEstimateTest, ProductRule) {
  // Marginals: A = (0.5, 0.5), B = (0.2, 0.3, 0.5), C = (0.4, 0.6), n=100.
  IndependentMarginalsEstimate estimate(
      {{0.5, 0.5}, {0.2, 0.3, 0.5}, {0.4, 0.6}}, 100.0);
  CountQuery query;
  query.attributes = {0, 2};
  query.tuples = {{0, 1}};
  EXPECT_NEAR(estimate.EstimateCount(query), 0.5 * 0.6 * 100.0, 1e-12);

  query.tuples = {{0, 1}, {1, 0}};
  EXPECT_NEAR(estimate.EstimateCount(query), (0.3 + 0.2) * 100.0, 1e-12);
}

TEST(IndependentMarginalsEstimateTest, ThreeWayProduct) {
  IndependentMarginalsEstimate estimate(
      {{0.5, 0.5}, {0.2, 0.3, 0.5}, {0.4, 0.6}}, 10.0);
  CountQuery query;
  query.attributes = {0, 1, 2};
  query.tuples = {{1, 2, 0}};
  EXPECT_NEAR(estimate.EstimateCount(query), 0.5 * 0.5 * 0.4 * 10.0, 1e-12);
}

TEST(ClusterFactorizationEstimateTest, WithinClusterUsesJoint) {
  // Clusters: {0, 1} with a joint that is NOT a product; {2} marginal.
  AttributeClustering clusters = {{0, 1}, {2}};
  std::vector<Domain> domains = {Domain({2, 3}), Domain({2})};
  // Joint over (A,B): all mass on the diagonal-ish cells.
  std::vector<double> joint_ab(6, 0.0);
  Domain d_ab({2, 3});
  joint_ab[d_ab.Encode({0, 0})] = 0.5;
  joint_ab[d_ab.Encode({1, 2})] = 0.5;
  std::vector<double> marginal_c = {0.25, 0.75};
  ClusterFactorizationEstimate estimate(clusters, domains,
                                        {joint_ab, marginal_c}, 100.0);

  CountQuery query;
  query.attributes = {0, 1};
  query.tuples = {{0, 0}};
  EXPECT_NEAR(estimate.EstimateCount(query), 50.0, 1e-12);
  query.tuples = {{0, 2}};  // Zero joint mass despite nonzero marginals.
  EXPECT_NEAR(estimate.EstimateCount(query), 0.0, 1e-12);
}

TEST(ClusterFactorizationEstimateTest, AcrossClustersMultiplies) {
  AttributeClustering clusters = {{0, 1}, {2}};
  std::vector<Domain> domains = {Domain({2, 3}), Domain({2})};
  std::vector<double> joint_ab(6, 0.0);
  Domain d_ab({2, 3});
  joint_ab[d_ab.Encode({0, 0})] = 0.5;
  joint_ab[d_ab.Encode({1, 2})] = 0.5;
  std::vector<double> marginal_c = {0.25, 0.75};
  ClusterFactorizationEstimate estimate(clusters, domains,
                                        {joint_ab, marginal_c}, 100.0);

  // P(A=0) = 0.5 (marginalized from the joint); P(C=1) = 0.75.
  CountQuery query;
  query.attributes = {0, 2};
  query.tuples = {{0, 1}};
  EXPECT_NEAR(estimate.EstimateCount(query), 0.5 * 0.75 * 100.0, 1e-12);
}

TEST(ClusterFactorizationEstimateTest, QueryOrderIndependent) {
  // Querying (B, A) instead of (A, B) must give the same counts.
  AttributeClustering clusters = {{0, 1}};
  std::vector<Domain> domains = {Domain({2, 3})};
  Domain d_ab({2, 3});
  std::vector<double> joint_ab(6, 0.0);
  joint_ab[d_ab.Encode({0, 1})] = 0.4;
  joint_ab[d_ab.Encode({1, 0})] = 0.6;
  ClusterFactorizationEstimate estimate(clusters, domains, {joint_ab}, 10.0);

  CountQuery forward;
  forward.attributes = {0, 1};
  forward.tuples = {{0, 1}};
  CountQuery backward;
  backward.attributes = {1, 0};
  backward.tuples = {{1, 0}};
  EXPECT_NEAR(estimate.EstimateCount(forward),
              estimate.EstimateCount(backward), 1e-12);
  EXPECT_NEAR(estimate.EstimateCount(forward), 4.0, 1e-12);
}

TEST(WeightedRecordsEstimateTest, UniformWeightsEqualEmpirical) {
  Dataset ds = SmallDataset();
  std::vector<double> uniform(ds.num_rows(), 1.0 / ds.num_rows());
  WeightedRecordsEstimate weighted(ds, uniform);
  EmpiricalCounts empirical(ds);

  CountQuery query;
  query.attributes = {0, 1};
  query.tuples = {{1, 2}, {0, 0}};
  EXPECT_NEAR(weighted.EstimateCount(query), empirical.EstimateCount(query),
              1e-12);
}

TEST(WeightedRecordsEstimateTest, WeightsScaleCounts) {
  Dataset ds = SmallDataset();
  // Put all mass on record 2 = (1, 2, 1).
  std::vector<double> weights(ds.num_rows(), 0.0);
  weights[2] = 1.0;
  WeightedRecordsEstimate weighted(ds, weights);

  CountQuery query;
  query.attributes = {0, 1};
  query.tuples = {{1, 2}};
  // n * total weight in S = 6 * 1.
  EXPECT_NEAR(weighted.EstimateCount(query), 6.0, 1e-12);
  query.tuples = {{0, 0}};
  EXPECT_NEAR(weighted.EstimateCount(query), 0.0, 1e-12);
}

}  // namespace
}  // namespace mdrr
