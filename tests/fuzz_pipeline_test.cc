// Randomized full-pipeline sweep: random schemas and datasets pushed
// through every protocol stage, asserting structural invariants only (no
// crashes, proper distributions, weight normalization, partition
// correctness). Catches interaction bugs that targeted unit tests miss.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/eval/utility_report.h"
#include "mdrr/protocol/session.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

// Builds a random schema (2-6 attributes, cardinalities 2-12, random
// types) and a random dataset with some injected pairwise couplings.
Dataset RandomDataset(uint64_t seed) {
  Rng rng(seed);
  const size_t m = 2 + rng.UniformInt(5);
  const size_t n = 500 + rng.UniformInt(3000);
  std::vector<Attribute> schema(m);
  for (size_t j = 0; j < m; ++j) {
    size_t cardinality = 2 + rng.UniformInt(11);
    schema[j].name = "attr" + std::to_string(j);
    schema[j].type = rng.Bernoulli(0.5) ? AttributeType::kOrdinal
                                        : AttributeType::kNominal;
    for (size_t v = 0; v < cardinality; ++v) {
      schema[j].categories.push_back("v" + std::to_string(v));
    }
  }
  std::vector<std::vector<uint32_t>> columns(m);
  for (size_t i = 0; i < n; ++i) {
    uint32_t previous = 0;
    for (size_t j = 0; j < m; ++j) {
      size_t cardinality = schema[j].cardinality();
      uint32_t value;
      if (j > 0 && rng.Bernoulli(0.5)) {
        // Couple to the previous attribute.
        value = previous % static_cast<uint32_t>(cardinality);
      } else {
        value = static_cast<uint32_t>(rng.UniformInt(cardinality));
      }
      columns[j].push_back(value);
      previous = value;
    }
  }
  return Dataset(std::move(schema), std::move(columns));
}

void ExpectProperDistribution(const std::vector<double>& dist) {
  double total = 0.0;
  for (double v : dist) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipeline, FullStackInvariantsHold) {
  const uint64_t seed = GetParam();
  Dataset ds = RandomDataset(seed);
  Rng rng(seed ^ 0xabcdef);

  // Protocol 1 + adjustment.
  double p = 0.2 + 0.7 * Rng(seed).UniformDouble();
  auto independent = RunRrIndependent(ds, RrIndependentOptions{p}, rng);
  ASSERT_TRUE(independent.ok()) << independent.status().ToString();
  for (const auto& marginal : independent.value().estimated) {
    ExpectProperDistribution(marginal);
  }
  auto adjustment = RunRrAdjustment(GroupsFromIndependent(*independent),
                                    ds.num_rows());
  ASSERT_TRUE(adjustment.ok());
  double weight_total = 0.0;
  for (double w : adjustment.value().weights) {
    EXPECT_GE(w, 0.0);
    weight_total += w;
  }
  EXPECT_NEAR(weight_total, 1.0, 1e-9);

  // RR-Clusters end to end with in-protocol dependence assessment.
  RrClustersOptions cluster_options;
  cluster_options.keep_probability = p;
  cluster_options.clustering =
      ClusteringOptions{20.0 + Rng(seed + 1).UniformInt(200) * 1.0, 0.1};
  cluster_options.dependence_source =
      DependenceSource::kRandomizedResponse;
  auto clusters = RunRrClusters(ds, cluster_options, rng);
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();
  std::vector<int> seen(ds.num_attributes(), 0);
  for (const auto& cluster : clusters.value().clusters) {
    for (size_t j : cluster) ++seen[j];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  for (const auto& joint : clusters.value().cluster_results) {
    ExpectProperDistribution(joint.estimated);
  }

  // Synthetic release + utility report round trip.
  Rng synth_rng(seed + 2);
  auto synthetic = SynthesizeFromClusters(
      *clusters, static_cast<int64_t>(ds.num_rows()), synth_rng);
  ASSERT_TRUE(synthetic.ok());
  eval::UtilityReportOptions report_options;
  report_options.queries_per_sigma = 4;
  report_options.sigmas = {0.3};
  auto report = eval::BuildUtilityReport(ds, synthetic.value(),
                                         report_options);
  ASSERT_TRUE(report.ok());
  for (double tv : report.value().marginal_tv) {
    EXPECT_GE(tv, 0.0);
    EXPECT_LE(tv, 1.0);
  }

  // Party-level session agrees structurally.
  protocol::SessionOptions session_options;
  session_options.keep_probability = p;
  session_options.clustering = cluster_options.clustering;
  session_options.seed = seed + 3;
  auto session = protocol::RunDistributedSession(ds, session_options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().messages_round1, ds.num_rows());
  for (const auto& joint : session.value().cluster_joints) {
    ExpectProperDistribution(joint);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace mdrr
