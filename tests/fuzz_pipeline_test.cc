// Randomized full-pipeline sweep: random schemas and datasets pushed
// through every protocol stage, asserting structural invariants only (no
// crashes, proper distributions, weight normalization, partition
// correctness). Catches interaction bugs that targeted unit tests miss.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/eval/utility_report.h"
#include "mdrr/protocol/session.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

// Builds a random schema (2-6 attributes, cardinalities 2-12, random
// types) and a random dataset with some injected pairwise couplings.
Dataset RandomDataset(uint64_t seed) {
  Rng rng(seed);
  const size_t m = 2 + rng.UniformInt(5);
  const size_t n = 500 + rng.UniformInt(3000);
  std::vector<Attribute> schema(m);
  for (size_t j = 0; j < m; ++j) {
    size_t cardinality = 2 + rng.UniformInt(11);
    schema[j].name = "attr" + std::to_string(j);
    schema[j].type = rng.Bernoulli(0.5) ? AttributeType::kOrdinal
                                        : AttributeType::kNominal;
    for (size_t v = 0; v < cardinality; ++v) {
      schema[j].categories.push_back("v" + std::to_string(v));
    }
  }
  std::vector<std::vector<uint32_t>> columns(m);
  for (size_t i = 0; i < n; ++i) {
    uint32_t previous = 0;
    for (size_t j = 0; j < m; ++j) {
      size_t cardinality = schema[j].cardinality();
      uint32_t value;
      if (j > 0 && rng.Bernoulli(0.5)) {
        // Couple to the previous attribute.
        value = previous % static_cast<uint32_t>(cardinality);
      } else {
        value = static_cast<uint32_t>(rng.UniformInt(cardinality));
      }
      columns[j].push_back(value);
      previous = value;
    }
  }
  return Dataset(std::move(schema), std::move(columns));
}

void ExpectProperDistribution(const std::vector<double>& dist) {
  double total = 0.0;
  for (double v : dist) {
    EXPECT_GE(v, -1e-12);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

class FuzzPipeline : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPipeline, FullStackInvariantsHold) {
  const uint64_t seed = GetParam();
  Dataset ds = RandomDataset(seed);
  Rng rng(seed ^ 0xabcdef);

  // Protocol 1 + adjustment.
  double p = 0.2 + 0.7 * Rng(seed).UniformDouble();
  auto independent = RunRrIndependent(ds, RrIndependentOptions{p}, rng);
  ASSERT_TRUE(independent.ok()) << independent.status().ToString();
  for (const auto& marginal : independent.value().estimated) {
    ExpectProperDistribution(marginal);
  }
  auto adjustment = RunRrAdjustment(GroupsFromIndependent(*independent),
                                    ds.num_rows());
  ASSERT_TRUE(adjustment.ok());
  double weight_total = 0.0;
  for (double w : adjustment.value().weights) {
    EXPECT_GE(w, 0.0);
    weight_total += w;
  }
  EXPECT_NEAR(weight_total, 1.0, 1e-9);

  // RR-Clusters end to end with in-protocol dependence assessment.
  RrClustersOptions cluster_options;
  cluster_options.keep_probability = p;
  cluster_options.clustering =
      ClusteringOptions{20.0 + Rng(seed + 1).UniformInt(200) * 1.0, 0.1};
  cluster_options.dependence_source =
      DependenceSource::kRandomizedResponse;
  auto clusters = RunRrClusters(ds, cluster_options, rng);
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();
  std::vector<int> seen(ds.num_attributes(), 0);
  for (const auto& cluster : clusters.value().clusters) {
    for (size_t j : cluster) ++seen[j];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  for (const auto& joint : clusters.value().cluster_results) {
    ExpectProperDistribution(joint.estimated);
  }

  // Synthetic release + utility report round trip.
  Rng synth_rng(seed + 2);
  auto synthetic = SynthesizeFromClusters(
      *clusters, static_cast<int64_t>(ds.num_rows()), synth_rng);
  ASSERT_TRUE(synthetic.ok());
  eval::UtilityReportOptions report_options;
  report_options.queries_per_sigma = 4;
  report_options.sigmas = {0.3};
  auto report = eval::BuildUtilityReport(ds, synthetic.value(),
                                         report_options);
  ASSERT_TRUE(report.ok());
  for (double tv : report.value().marginal_tv) {
    EXPECT_GE(tv, 0.0);
    EXPECT_LE(tv, 1.0);
  }

  // Party-level session agrees structurally.
  protocol::SessionOptions session_options;
  session_options.keep_probability = p;
  session_options.clustering = cluster_options.clustering;
  session_options.seed = seed + 3;
  auto session = protocol::RunDistributedSession(ds, session_options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().messages_round1, ds.num_rows());
  for (const auto& joint : session.value().cluster_joints) {
    ExpectProperDistribution(joint);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Release-spec validator fuzzing: malformed and contradictory specs must
// come back as Status errors -- never crash, never run.
// ---------------------------------------------------------------------------

// Plans (and, when planning succeeds, runs) a spec against a small
// dataset and requires a non-OK status somewhere.
void ExpectSpecRejected(const release::ReleaseSpec& spec,
                        const Dataset& data) {
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  if (!plan.ok()) return;
  auto artifacts = plan.value().Run();
  EXPECT_FALSE(artifacts.ok())
      << "contradictory spec was accepted: "
      << release::PrintReleaseSpec(spec);
}

TEST(FuzzReleaseSpec, ContradictorySpecsAreRejected) {
  Dataset ds = RandomDataset(3);
  const size_t m = ds.num_attributes();
  std::vector<release::ReleaseSpec> bad;

  {  // Epsilon cap <= 0 (and NaN).
    release::ReleaseSpec spec;
    spec.budget.max_total_epsilon = 0.0;
    bad.push_back(spec);
    spec.budget.max_total_epsilon = -3.0;
    bad.push_back(spec);
    spec.budget.max_total_epsilon = std::nan("");
    bad.push_back(spec);
  }
  {  // Keep probabilities outside (0, 1].
    release::ReleaseSpec spec;
    spec.budget.keep_probability = 0.0;
    bad.push_back(spec);
    spec.budget.keep_probability = 1.5;
    bad.push_back(spec);
    spec.budget.keep_probability = 0.7;
    spec.budget.dependence_keep_probability = -0.2;
    bad.push_back(spec);
  }
  {  // Joint mechanism with an empty / duplicated / absent attribute set.
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kJoint;
    bad.push_back(spec);  // Empty cluster set.
    spec.mechanism.joint_attributes = {0, 0};
    bad.push_back(spec);
    spec.mechanism.joint_attributes = {m + 5};
    bad.push_back(spec);
  }
  {  // Clustering knobs out of range; provided source without a matrix.
    release::ReleaseSpec spec;
    spec.mechanism.clustering.max_combinations = 0.0;
    bad.push_back(spec);
    spec.mechanism.clustering = ClusteringOptions{50.0, 2.0};
    bad.push_back(spec);
    spec.mechanism.clustering = ClusteringOptions{50.0, 0.1};
    spec.mechanism.dependence_source = DependenceSource::kProvided;
    bad.push_back(spec);
  }
  {  // Adjustment groups referencing absent attributes, duplicates,
     // empty groups, non-singletons under independent, groups while
     // disabled, and nonsense iteration knobs.
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kIndependent;
    spec.adjustment.enabled = true;
    spec.adjustment.groups = {{m + 1}};
    bad.push_back(spec);
    spec.adjustment.groups = {{0, 0}};
    bad.push_back(spec);
    spec.adjustment.groups = {{}};
    bad.push_back(spec);
    spec.adjustment.groups = {{0, 1}};  // Non-singleton for independent.
    bad.push_back(spec);
    spec.adjustment.groups.clear();
    spec.adjustment.max_iterations = 0;
    bad.push_back(spec);
    spec.adjustment.max_iterations = 100;
    spec.adjustment.tolerance = 0.0;
    bad.push_back(spec);
    spec.adjustment.tolerance = 1e-9;
    spec.adjustment.enabled = false;
    spec.adjustment.groups = {{0}};
    bad.push_back(spec);
  }
  {  // Adjustment / synthesis on mechanisms that cannot support them.
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kJoint;
    spec.mechanism.joint_attributes = {0};
    spec.adjustment.enabled = true;
    bad.push_back(spec);
    spec.adjustment.enabled = false;
    spec.synthetic.enabled = true;
    bad.push_back(spec);
    spec.mechanism.kind = release::MechanismKind::kPram;
    bad.push_back(spec);
  }
  {  // A clusters adjustment group that cannot match any realized
     // cluster: Tv=1 forbids every merge, so clusters are singletons and
     // a two-attribute group necessarily spans clusters.
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kClusters;
    spec.mechanism.dependence_source = DependenceSource::kOracle;
    spec.mechanism.clustering.max_combinations = 1.0;
    spec.adjustment.enabled = true;
    spec.adjustment.groups = {{0, 1}};
    bad.push_back(spec);
  }
  {  // Evaluation without synthetic output; bad sigmas; bad queries.
    release::ReleaseSpec spec;
    spec.evaluation.utility_report = true;
    bad.push_back(spec);
    spec.mechanism.kind = release::MechanismKind::kIndependent;
    spec.synthetic.enabled = true;
    spec.evaluation.sigmas = {0.0};
    bad.push_back(spec);
    spec.evaluation.sigmas = {0.3};
    spec.evaluation.queries_per_sigma = 0;
    bad.push_back(spec);
    spec.evaluation.utility_report = false;
    spec.synthetic.enabled = true;
    spec.synthetic.records = -5;
    bad.push_back(spec);
  }
  {  // Contradictory frequency_oracle sections: per-attribute backends
     // never combine with joint/clusters/pram mechanisms, streaming,
     // the distributed policy, adjustment, synthesis, microdata output,
     // or a malformed epsilon.
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kIndependent;
    spec.frequency_oracle.backend = OracleBackend::kOptimizedUnary;
    spec.frequency_oracle.epsilon = -2.0;
    bad.push_back(spec);
    spec.frequency_oracle.epsilon = std::nan("");
    bad.push_back(spec);
    spec.frequency_oracle.epsilon = 1.0;
    spec.mechanism.kind = release::MechanismKind::kPram;
    bad.push_back(spec);
    spec.mechanism.kind = release::MechanismKind::kClusters;
    bad.push_back(spec);
    spec.mechanism.kind = release::MechanismKind::kJoint;
    spec.mechanism.joint_attributes = {0};
    bad.push_back(spec);
    spec.mechanism.joint_attributes.clear();
    spec.mechanism.kind = release::MechanismKind::kIndependent;
    spec.adjustment.enabled = true;
    bad.push_back(spec);
    spec.adjustment.enabled = false;
    spec.synthetic.enabled = true;
    bad.push_back(spec);
    spec.synthetic.enabled = false;
    spec.frequency_oracle.backend = OracleBackend::kLocalHashing;
    spec.output.randomized_csv = "/tmp/y.csv";  // No microdata to write.
    bad.push_back(spec);
    spec.output.randomized_csv.clear();
    spec.execution.kind = release::PolicyKind::kDistributed;
    spec.execution.num_workers = 1;
    bad.push_back(spec);
  }
  {  // Execution / dataset / output contradictions.
    release::ReleaseSpec spec;
    spec.execution.shard_size = 0;
    bad.push_back(spec);
    spec.execution.shard_size = 1 << 16;
    spec.dataset.source = release::DatasetSpec::Source::kCsvFile;
    bad.push_back(spec);  // Empty csv_path.
    spec.dataset.source = release::DatasetSpec::Source::kSyntheticAdult;
    spec.dataset.synthetic_records = 0;
    bad.push_back(spec);
    spec.dataset = release::DatasetSpec{};
    spec.output.synthetic_csv = "/tmp/x.csv";  // Synthetic disabled.
    bad.push_back(spec);
  }

  // Streaming contradictions (validator-level: the batch planner refuses
  // ALL streaming specs, so rejection through ExpectSpecRejected alone
  // would not prove the streaming rules fire; assert on the validator).
  std::vector<release::ReleaseSpec> bad_streaming;
  {
    release::ReleaseSpec spec;
    spec.mechanism.kind = release::MechanismKind::kIndependent;
    spec.streaming.enabled = true;
    bad_streaming.push_back(spec);  // No window size.
    spec.streaming.window_size = 100;
    spec.streaming.window_stride = 40;  // Tumbling stride != size.
    bad_streaming.push_back(spec);
    spec.streaming.window_kind = release::WindowKind::kSliding;
    spec.streaming.window_stride = 0;  // Sliding needs a stride...
    bad_streaming.push_back(spec);
    spec.streaming.window_stride = 100;  // ...strictly below the size...
    bad_streaming.push_back(spec);
    spec.streaming.window_stride = 30;  // ...that divides it.
    bad_streaming.push_back(spec);
    spec.streaming.window_stride = 50;
    spec.streaming.window_epsilon = -1.0;  // Negative charge.
    bad_streaming.push_back(spec);
    spec.streaming.window_epsilon = std::nan("");
    bad_streaming.push_back(spec);
    spec.streaming.window_epsilon = 0.0;
    spec.adjustment.enabled = true;  // Batch-only stage.
    bad_streaming.push_back(spec);
    spec.adjustment.enabled = false;
    spec.mechanism.kind = release::MechanismKind::kClusters;
    bad_streaming.push_back(spec);  // Streaming is per-attribute marginals only.
    spec = release::ReleaseSpec{};
    spec.streaming.max_windows = 3;  // Knobs without streaming.enabled.
    bad_streaming.push_back(spec);
  }

  for (const release::ReleaseSpec& spec : bad) {
    ExpectSpecRejected(spec, ds);
  }
  for (const release::ReleaseSpec& spec : bad_streaming) {
    EXPECT_FALSE(release::ValidateReleaseSpec(spec, ds.num_attributes()).ok())
        << release::PrintReleaseSpec(spec);
  }

  // kProvided source without a dataset pointer.
  release::ReleaseSpec provided;
  EXPECT_FALSE(release::ReleasePlanner::Plan(provided, nullptr).ok());
}

// Random mutations of a printed spec: the parser and validator must
// return a status (any status) without crashing. The seed text carries a
// non-default frequency_oracle section so its keys and tokens are in the
// mutation alphabet.
TEST(FuzzReleaseSpec, MutatedSpecTextNeverCrashes) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kJoint;
  spec.mechanism.joint_attributes = {0, 1};
  spec.adjustment.groups = {{0}, {1, 2}};
  spec.adjustment.enabled = true;
  spec.frequency_oracle.backend = OracleBackend::kLocalHashing;
  spec.frequency_oracle.epsilon = 1.25;
  const std::string text = release::PrintReleaseSpec(spec);
  ASSERT_NE(text.find("frequency_oracle.backend olh"), std::string::npos);

  Rng rng(2026);
  const char garbage[] = "#\n \t-eXz0987.,;inf nan 1e999";
  for (int round = 0; round < 500; ++round) {
    std::string mutated = text;
    switch (rng.UniformInt(4)) {
      case 0: {  // Flip a byte.
        size_t at = rng.UniformInt(mutated.size());
        mutated[at] = garbage[rng.UniformInt(sizeof(garbage) - 1)];
        break;
      }
      case 1: {  // Delete a chunk.
        size_t at = rng.UniformInt(mutated.size());
        mutated.erase(at, 1 + rng.UniformInt(40));
        break;
      }
      case 2: {  // Duplicate a suffix (repeated keys are accepted).
        size_t at = rng.UniformInt(mutated.size());
        mutated += mutated.substr(at);
        break;
      }
      default: {  // Insert noise.
        size_t at = rng.UniformInt(mutated.size());
        mutated.insert(at, &garbage[rng.UniformInt(sizeof(garbage) - 1)]);
        break;
      }
    }
    auto parsed = release::ParseReleaseSpec(mutated);
    if (parsed.ok()) {
      // Whatever parsed must validate cleanly or fail with a status.
      release::ValidateReleaseSpec(parsed.value(), 8);
    }
  }
}

// Same for the artifacts summary parser (NaN/huge/negative declared
// lengths, truncated matrices, garbage numbers).
TEST(FuzzReleaseSpec, MutatedArtifactsTextNeverCrashes) {
  const std::string text =
      "mdrr-release-artifacts v1\n"
      "records 100\n"
      "release_epsilon 2.5\n"
      "dependence_epsilon 0.5\n"
      "marginals 2\n"
      "marginal 2 0.25 0.75\n"
      "marginal 3 0.5 0.25 0.25\n"
      "clusters 1\n"
      "cluster 0 1\n"
      "dependences 2\n"
      "deprow 1 0.3\n"
      "deprow 0.3 1\n"
      "adjustment 7 1 1e-10\n"
      "weights 0.5 0.25 0.25\n"
      "utility.marginal_tv 0.1 0.2\n"
      "utility.median_relative_error 0.05\n"
      "utility.max_dependence_shift 0.3\n"
      "timing mechanism 0.25\n";
  ASSERT_TRUE(release::ParseReleaseArtifacts(text).ok());

  Rng rng(2027);
  const char garbage[] = "#\n \t-eXz0987.,;inf nan 1e999";
  for (int round = 0; round < 500; ++round) {
    std::string mutated = text;
    switch (rng.UniformInt(3)) {
      case 0: {
        size_t at = rng.UniformInt(mutated.size());
        mutated[at] = garbage[rng.UniformInt(sizeof(garbage) - 1)];
        break;
      }
      case 1: {
        size_t at = rng.UniformInt(mutated.size());
        mutated.erase(at, 1 + rng.UniformInt(40));
        break;
      }
      default: {
        size_t at = rng.UniformInt(mutated.size());
        mutated.insert(at, &garbage[rng.UniformInt(sizeof(garbage) - 1)]);
        break;
      }
    }
    release::ParseReleaseArtifacts(mutated);  // ok or error, never a crash.
  }
}

// And for the streaming-snapshot parser: a corrupted resume file must
// come back as a status (or parse into something Resume rejects), never
// crash the collector.
TEST(FuzzReleaseSpec, MutatedSnapshotTextNeverCrashes) {
  const std::string text =
      "mdrr-streaming-snapshot v1\n"
      "next_sequence 1130\n"
      "next_window 4\n"
      "epsilon_spent 5.3\n"
      "window_epsilons 2.65 0 2.65 0\n"
      "cardinalities 3 2 4\n"
      "bucket 5 200 60 70 70 140 60 50 50 50 50\n"
      "bucket 6 130 40 45 45 91 39 33 33 32 32\n";
  ASSERT_TRUE(release::ParseStreamingSnapshot(text).ok());

  Rng rng(2028);
  const char garbage[] = "#\n \t-eXz0987.,;inf nan 1e999";
  for (int round = 0; round < 500; ++round) {
    std::string mutated = text;
    switch (rng.UniformInt(3)) {
      case 0: {
        size_t at = rng.UniformInt(mutated.size());
        mutated[at] = garbage[rng.UniformInt(sizeof(garbage) - 1)];
        break;
      }
      case 1: {
        size_t at = rng.UniformInt(mutated.size());
        mutated.erase(at, 1 + rng.UniformInt(40));
        break;
      }
      default: {
        size_t at = rng.UniformInt(mutated.size());
        mutated.insert(at, &garbage[rng.UniformInt(sizeof(garbage) - 1)]);
        break;
      }
    }
    auto parsed = release::ParseStreamingSnapshot(mutated);
    if (parsed.ok()) {
      // Whatever parsed must be either resumable or cleanly refused.
      release::ReleaseSpec spec;
      spec.mechanism.kind = release::MechanismKind::kIndependent;
      spec.streaming.enabled = true;
      spec.streaming.window_size = 400;
      spec.streaming.window_kind = release::WindowKind::kSliding;
      spec.streaming.window_stride = 200;
      release::StreamingCollector::Resume(
          spec, {3, 2, 4}, release::StreamingCollectorOptions{},
          parsed.value());
    }
  }
}

// Valid random specs through the whole façade: every combination of
// mechanism x policy x toggles that validates must also execute.
class FuzzReleasePlan : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzReleasePlan, ValidSpecsAlwaysExecute) {
  const uint64_t seed = GetParam();
  Dataset ds = RandomDataset(seed);
  Rng rng(seed ^ 0x5eedf00d);

  release::ReleaseSpec spec;
  const release::MechanismKind kinds[] = {
      release::MechanismKind::kIndependent, release::MechanismKind::kJoint,
      release::MechanismKind::kClusters, release::MechanismKind::kPram};
  spec.mechanism.kind = kinds[rng.UniformInt(4)];
  spec.budget.keep_probability = 0.3 + 0.6 * rng.UniformDouble();
  spec.budget.dependence_keep_probability =
      0.3 + 0.6 * rng.UniformDouble();
  if (spec.mechanism.kind == release::MechanismKind::kJoint) {
    // A random non-empty subset of up to 3 attributes (keeps the
    // product domain small).
    for (size_t j = 0; j < ds.num_attributes() &&
                       spec.mechanism.joint_attributes.size() < 3;
         ++j) {
      if (rng.Bernoulli(0.5)) spec.mechanism.joint_attributes.push_back(j);
    }
    if (spec.mechanism.joint_attributes.empty()) {
      spec.mechanism.joint_attributes.push_back(0);
    }
  }
  spec.mechanism.clustering =
      ClusteringOptions{20.0 + rng.UniformInt(200) * 1.0, 0.1};
  spec.mechanism.dependence_source =
      rng.Bernoulli(0.5) ? DependenceSource::kOracle
                         : DependenceSource::kRandomizedResponse;
  const bool adjustable =
      spec.mechanism.kind != release::MechanismKind::kJoint;
  const bool synthesizable =
      spec.mechanism.kind == release::MechanismKind::kIndependent ||
      spec.mechanism.kind == release::MechanismKind::kClusters;
  spec.adjustment.enabled = adjustable && rng.Bernoulli(0.5);
  spec.synthetic.enabled = synthesizable && rng.Bernoulli(0.5);
  if (rng.Bernoulli(0.5)) {
    spec.execution.kind = release::PolicyKind::kSharded;
    spec.execution.num_threads = 1 + rng.UniformInt(4);
    spec.execution.shard_size = 64 + rng.UniformInt(2000);
  }
  spec.execution.seed = seed;

  // A non-default frequency-oracle backend rides along when nothing it
  // forbids is enabled. Epsilon 0 inherits the design's per-attribute
  // budget, so the total spend matches the plain independent release.
  if (spec.mechanism.kind == release::MechanismKind::kIndependent &&
      !spec.adjustment.enabled && !spec.synthetic.enabled &&
      rng.Bernoulli(0.5)) {
    const OracleBackend backends[] = {OracleBackend::kSymmetricUnary,
                                      OracleBackend::kOptimizedUnary,
                                      OracleBackend::kLocalHashing};
    spec.frequency_oracle.backend = backends[rng.UniformInt(3)];
  }

  auto plan = release::ReleasePlanner::Plan(spec, &ds);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto artifacts = plan.value().Run();
  ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString()
                              << "\nspec:\n"
                              << release::PrintReleaseSpec(spec);
  for (const auto& marginal : artifacts.value().marginal_estimates) {
    ExpectProperDistribution(marginal);
  }
  if (artifacts.value().adjustment.has_value()) {
    double total = 0.0;
    for (double w : artifacts.value().adjustment->weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  if (artifacts.value().synthetic.has_value()) {
    EXPECT_EQ(artifacts.value().synthetic->num_rows(), ds.num_rows());
  }
  // The spec reproduces itself through serialization and re-execution.
  auto reparsed =
      release::ParseReleaseSpec(release::PrintReleaseSpec(spec));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value() == spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzReleasePlan,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace mdrr
