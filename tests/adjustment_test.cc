#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

// The paper's Example 1 (Section 5): n = 10, two binary attributes,
// randomized data Y with records
//   (a11, a21) x4, (a12, a21) x2, (a11, a22) x0, (a12, a22) x4
// and target marginals (1/2, 1/2) for both attributes. Algorithm 2 must
// converge to joint weights Pr(a11,a21)=1/2, Pr(a12,a22)=1/2, rest 0.
TEST(AdjustmentTest, PaperExampleOne) {
  std::vector<AdjustmentGroup> groups(2);
  groups[0].codes = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};  // Attribute 1.
  groups[0].target = {0.5, 0.5};
  groups[1].codes = {0, 0, 0, 0, 0, 0, 1, 1, 1, 1};  // Attribute 2.
  groups[1].target = {0.5, 0.5};

  AdjustmentOptions options;
  options.max_iterations = 2000;
  options.tolerance = 1e-12;
  auto result = RunRrAdjustment(groups, 10, options);
  ASSERT_TRUE(result.ok());

  // IPF converges towards this limit only sublinearly here (the vanishing
  // cell (a12, a21) decays like 1/iterations, a classic property of IPF
  // with zero-mass limit cells), so assert proximity, not exactness.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.value().weights[i], 0.125, 2e-3) << "record " << i;
  }
  EXPECT_NEAR(result.value().weights[4], 0.0, 2e-3);
  EXPECT_NEAR(result.value().weights[5], 0.0, 2e-3);
  for (int i = 6; i < 10; ++i) {
    EXPECT_NEAR(result.value().weights[i], 0.125, 2e-3) << "record " << i;
  }

  // The paper's point in Example 1: the adjusted joint (-> (1/2, 0, 0,
  // 1/2)) is far more faithful to Y than the product-of-marginals
  // estimate (1/4 in every cell). Check cell (a11, a22), truly absent
  // from Y: adjustment sends it to ~0 while independence claims 1/4.
  double cell_a11_a22 = 0.0;
  for (int i = 0; i < 10; ++i) {
    if (groups[0].codes[i] == 0 && groups[1].codes[i] == 1) {
      cell_a11_a22 += result.value().weights[i];
    }
  }
  EXPECT_LT(cell_a11_a22, 0.01);
}

TEST(AdjustmentTest, WeightsAlwaysSumToOne) {
  std::vector<AdjustmentGroup> groups(1);
  groups[0].codes = {0, 1, 2, 0, 1, 2, 0};
  groups[0].target = {0.6, 0.3, 0.1};
  auto result = RunRrAdjustment(groups, 7);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double w : result.value().weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(AdjustmentTest, SingleGroupMatchesExactlyInOneSweep) {
  // With a single marginal constraint, IPF is exact after one sweep.
  std::vector<AdjustmentGroup> groups(1);
  groups[0].codes = {0, 0, 0, 1};
  groups[0].target = {0.25, 0.75};
  auto result = RunRrAdjustment(groups, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
  // Implied marginal: category 0 has 3 records sharing mass 0.25.
  EXPECT_NEAR(result.value().weights[0], 0.25 / 3, 1e-12);
  EXPECT_NEAR(result.value().weights[3], 0.75, 1e-12);
}

TEST(AdjustmentTest, ConsistentTargetsConvergeToExactMarginals) {
  // Two overlapping constraints over 3-category codes.
  Rng rng(5);
  const size_t n = 5000;
  std::vector<AdjustmentGroup> groups(2);
  groups[0].target = {0.5, 0.3, 0.2};
  groups[1].target = {0.4, 0.6};
  for (size_t i = 0; i < n; ++i) {
    groups[0].codes.push_back(static_cast<uint32_t>(rng.UniformInt(3)));
    groups[1].codes.push_back(static_cast<uint32_t>(rng.UniformInt(2)));
  }
  AdjustmentOptions options;
  options.max_iterations = 300;
  options.tolerance = 1e-12;
  auto result = RunRrAdjustment(groups, n, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().converged);
  EXPECT_LT(result.value().max_marginal_gap, 1e-11);

  // Verify one implied marginal explicitly.
  std::vector<double> implied(3, 0.0);
  for (size_t i = 0; i < n; ++i) {
    implied[groups[0].codes[i]] += result.value().weights[i];
  }
  EXPECT_NEAR(implied[0], 0.5, 1e-10);
  EXPECT_NEAR(implied[1], 0.3, 1e-10);
  EXPECT_NEAR(implied[2], 0.2, 1e-10);
}

TEST(AdjustmentTest, UnreachableTargetReportsGap) {
  // A category with target mass but no records can never be matched.
  std::vector<AdjustmentGroup> groups(1);
  groups[0].codes = {0, 0, 0, 0};  // Category 1 absent.
  groups[0].target = {0.7, 0.3};
  auto result = RunRrAdjustment(groups, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().converged);
  EXPECT_NEAR(result.value().max_marginal_gap, 0.3, 1e-9);
}

TEST(AdjustmentTest, InputValidation) {
  EXPECT_FALSE(RunRrAdjustment({}, 5).ok());

  std::vector<AdjustmentGroup> wrong_size(1);
  wrong_size[0].codes = {0, 1};
  wrong_size[0].target = {0.5, 0.5};
  EXPECT_FALSE(RunRrAdjustment(wrong_size, 5).ok());

  std::vector<AdjustmentGroup> bad_target(1);
  bad_target[0].codes = {0, 1, 0};
  bad_target[0].target = {0.9, 0.9};  // Sums to 1.8.
  EXPECT_FALSE(RunRrAdjustment(bad_target, 3).ok());

  std::vector<AdjustmentGroup> negative_target(1);
  negative_target[0].codes = {0, 1, 0};
  negative_target[0].target = {1.2, -0.2};
  EXPECT_FALSE(RunRrAdjustment(negative_target, 3).ok());

  std::vector<AdjustmentGroup> out_of_range(1);
  out_of_range[0].codes = {0, 5, 0};
  out_of_range[0].target = {0.5, 0.5};
  EXPECT_FALSE(RunRrAdjustment(out_of_range, 3).ok());
}

TEST(AdjustmentTest, GroupsFromIndependentShapes) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1"}},
  };
  Rng data_rng(7);
  std::vector<std::vector<uint32_t>> cols(2);
  for (int i = 0; i < 3000; ++i) {
    cols[0].push_back(static_cast<uint32_t>(data_rng.UniformInt(3)));
    cols[1].push_back(static_cast<uint32_t>(data_rng.UniformInt(2)));
  }
  Dataset ds(schema, std::move(cols));
  Rng rng(11);
  auto rr = RunRrIndependent(ds, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(rr.ok());

  std::vector<AdjustmentGroup> groups = GroupsFromIndependent(*rr);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].codes.size(), ds.num_rows());
  EXPECT_EQ(groups[0].target.size(), 3u);
  EXPECT_EQ(groups[1].target.size(), 2u);

  auto adjusted = MakeAdjustedEstimate(*rr);
  ASSERT_TRUE(adjusted.ok());
  // Marginal queries through the adjusted estimate match the RR-Ind
  // estimated marginal by construction (IPF fixes marginals).
  CountQuery query;
  query.attributes = {0};
  query.tuples = {{1}};
  double expected = rr.value().estimated[0][1] * ds.num_rows();
  EXPECT_NEAR(adjusted.value().EstimateCount(query), expected,
              1e-6 * ds.num_rows());
}

}  // namespace
}  // namespace mdrr
