// The fast estimation backend: blocked parallel LU (bit-identical to the
// unblocked reference for every block size and thread count), batched
// transpose solves, the structured closed-form variances, and the
// tolerance/overflow bugfixes that ride along.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/linalg/structured.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

linalg::Matrix RandomDiagonallyDominant(size_t n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.UniformDouble() - 0.5;
    }
    a(i, i) += 2.0;
  }
  return a;
}

// Random with deliberately small diagonals: partial pivoting must swap
// rows at nearly every panel step, exercising the full-row-swap /
// deferred-update interaction of the blocked factorization.
linalg::Matrix RandomPivotHeavy(size_t n, uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = rng.UniformDouble() - 0.5;
    }
    a(i, i) *= 1e-3;
  }
  return a;
}

std::vector<std::vector<double>> RandomRhs(size_t count, size_t n,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> bs(count, std::vector<double>(n));
  for (auto& b : bs) {
    for (double& x : b) x = rng.UniformDouble() - 0.5;
  }
  return bs;
}

// A dense (non-uniform-mixture) row-stochastic design.
RrMatrix DenseRrMatrix(size_t r, double epsilon) {
  RrMatrix m = RrMatrix::GeometricOrdinal(r, epsilon);
  EXPECT_FALSE(m.is_structured());
  return m;
}

// --- Blocked LU ---

TEST(BlockedLuTest, MatchesUnblockedReferenceBitForBitUnderHeavyPivoting) {
  for (size_t n : {3u, 17u, 65u, 100u}) {
    linalg::Matrix a = RandomPivotHeavy(n, 5000 + n);
    linalg::LuOptions reference_options;
    reference_options.block_size = 0;
    auto reference = linalg::LuDecomposition::Factor(a, reference_options);
    ASSERT_TRUE(reference.ok());
    std::vector<std::vector<double>> bs = RandomRhs(3, n, 6000 + n);
    for (size_t block : {1u, 7u, 64u}) {
      for (size_t threads : {1u, 4u}) {
        linalg::LuOptions options;
        options.block_size = block;
        options.num_threads = threads;
        auto blocked = linalg::LuDecomposition::Factor(a, options);
        ASSERT_TRUE(blocked.ok());
        EXPECT_EQ(blocked.value().Determinant(),
                  reference.value().Determinant())
            << "n=" << n << " block=" << block << " threads=" << threads;
        for (const auto& b : bs) {
          EXPECT_EQ(blocked.value().Solve(b), reference.value().Solve(b))
              << "n=" << n << " block=" << block << " threads=" << threads;
        }
      }
    }
  }
}

TEST(BlockedLuTest, MatchesUnblockedReferenceBitForBit) {
  for (size_t n : {1u, 2u, 3u, 5u, 17u, 64u, 65u, 100u, 130u}) {
    linalg::Matrix a = RandomDiagonallyDominant(n, 1000 + n);
    linalg::LuOptions reference_options;
    reference_options.block_size = 0;  // Unblocked classic loop.
    auto reference = linalg::LuDecomposition::Factor(a, reference_options);
    ASSERT_TRUE(reference.ok());
    std::vector<std::vector<double>> bs = RandomRhs(3, n, 2000 + n);
    for (size_t block : {1u, 7u, 64u, 128u}) {
      for (size_t threads : {1u, 4u}) {
        linalg::LuOptions options;
        options.block_size = block;
        options.num_threads = threads;
        auto blocked = linalg::LuDecomposition::Factor(a, options);
        ASSERT_TRUE(blocked.ok());
        EXPECT_EQ(blocked.value().Determinant(),
                  reference.value().Determinant())
            << "n=" << n << " block=" << block << " threads=" << threads;
        for (const auto& b : bs) {
          EXPECT_EQ(blocked.value().Solve(b), reference.value().Solve(b))
              << "n=" << n << " block=" << block << " threads=" << threads;
        }
      }
    }
  }
}

TEST(BlockedLuTest, ThreadSweepIsBitIdentical) {
  const size_t n = 150;
  linalg::Matrix a = RandomDiagonallyDominant(n, 31);
  std::vector<std::vector<double>> bs = RandomRhs(4, n, 37);
  linalg::LuOptions options;
  options.num_threads = 1;
  auto baseline = linalg::LuDecomposition::Factor(a, options);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    auto factored = linalg::LuDecomposition::Factor(a, options);
    ASSERT_TRUE(factored.ok());
    for (const auto& b : bs) {
      EXPECT_EQ(factored.value().Solve(b), baseline.value().Solve(b))
          << "threads=" << threads;
    }
  }
}

TEST(BlockedLuTest, SolveManyMatchesLoopedSolve) {
  const size_t n = 40;
  linalg::Matrix a = RandomDiagonallyDominant(n, 41);
  auto lu = linalg::LuDecomposition::Factor(a);
  ASSERT_TRUE(lu.ok());
  std::vector<std::vector<double>> bs = RandomRhs(23, n, 43);
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::vector<double>> batched =
        lu.value().SolveMany(bs, threads);
    ASSERT_EQ(batched.size(), bs.size());
    for (size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(batched[i], lu.value().Solve(bs[i])) << "rhs " << i;
    }
  }
}

TEST(BlockedLuTest, BlockedPathRejectsSingular) {
  linalg::Matrix singular(3, 3, 1.0);  // Rank 1.
  linalg::LuOptions options;
  options.block_size = 2;
  options.num_threads = 4;
  EXPECT_FALSE(linalg::LuDecomposition::Factor(singular, options).ok());
}

// --- Batched transpose solves on RrMatrix ---

TEST(SolveTransposeManyTest, MatchesLoopedSolveTransposeDense) {
  RrMatrix m = DenseRrMatrix(9, 1.2);
  std::vector<std::vector<double>> bs = RandomRhs(17, 9, 53);
  for (size_t threads : {1u, 2u, 8u}) {
    auto batched = m.SolveTransposeMany(bs, threads);
    ASSERT_TRUE(batched.ok());
    for (size_t i = 0; i < bs.size(); ++i) {
      auto single = m.SolveTranspose(bs[i]);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(batched.value()[i], single.value()) << "rhs " << i;
    }
  }
}

TEST(SolveTransposeManyTest, MatchesLoopedSolveTransposeStructured) {
  RrMatrix m = RrMatrix::KeepUniform(12, 0.4);
  std::vector<std::vector<double>> bs = RandomRhs(9, 12, 59);
  auto batched = m.SolveTransposeMany(bs, 4);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < bs.size(); ++i) {
    auto single = m.SolveTranspose(bs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batched.value()[i], single.value()) << "rhs " << i;
  }
}

TEST(SolveTransposeManyTest, FactorThreadCountNeverChangesTheCache) {
  // Two independent instances of the same dense design, one factored by a
  // single-threaded solve and one by an 8-thread batched solve: the
  // cached factors must agree bit for bit.
  linalg::Matrix dense = DenseRrMatrix(11, 0.9).ToDense();
  auto single_threaded = RrMatrix::FromDense(dense);
  auto multi_threaded = RrMatrix::FromDense(dense);
  ASSERT_TRUE(single_threaded.ok());
  ASSERT_TRUE(multi_threaded.ok());
  std::vector<std::vector<double>> bs = RandomRhs(5, 11, 61);
  auto batched = multi_threaded.value().SolveTransposeMany(bs, 8);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < bs.size(); ++i) {
    auto single = single_threaded.value().SolveTranspose(bs[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batched.value()[i], single.value()) << "rhs " << i;
  }
}

TEST(SolveTransposeManyTest, RejectsSizeMismatchAndSingular) {
  RrMatrix m = RrMatrix::KeepUniform(3, 0.5);
  EXPECT_FALSE(m.SolveTransposeMany({{0.5, 0.5}}, 2).ok());
  RrMatrix uniform = RrMatrix::UniformReplacement(3);
  EXPECT_FALSE(
      uniform.SolveTransposeMany({{0.3, 0.3, 0.4}}, 2).ok());
}

// --- Structured path: agreement with dense and the no-LU guarantee ---

TEST(StructuredBackendTest, StructuredSolveAgreesWithDenseLu) {
  for (size_t r : {2u, 5u, 37u}) {
    for (double p : {0.2, 0.6, 0.9}) {
      RrMatrix m = RrMatrix::KeepUniform(r, p);
      std::vector<double> b = RandomRhs(1, r, r * 100 + 7)[0];
      auto fast = m.SolveTranspose(b);
      ASSERT_TRUE(fast.ok());
      auto slow = linalg::SolveLinearSystem(m.ToDense().Transpose(), b);
      ASSERT_TRUE(slow.ok());
      for (size_t i = 0; i < r; ++i) {
        EXPECT_NEAR(fast.value()[i], slow.value()[i],
                    1e-11 * (1.0 + std::fabs(slow.value()[i])))
            << "r=" << r << " p=" << p << " entry " << i;
      }
    }
  }
}

TEST(StructuredBackendTest, FullEstimationPipelineTriggersNoFactorization) {
  RrMatrix m = RrMatrix::KeepUniform(500, 0.3);
  std::vector<double> pi(500, 1.0 / 500.0);
  std::vector<double> lambda = m.ToDense().TransposeMatVec(pi);
  uint64_t factorizations_before = linalg::LuFactorizationCount();
  auto estimated = EstimateProjectedDistribution(m, lambda);
  ASSERT_TRUE(estimated.ok());
  auto variances = EstimateVariances(m, lambda, 10000);
  ASSERT_TRUE(variances.ok());
  auto widths = EstimateConfidenceHalfWidths(m, lambda, 10000, 0.05);
  ASSERT_TRUE(widths.ok());
  EXPECT_EQ(linalg::LuFactorizationCount(), factorizations_before)
      << "the structured path must never factor";
}

// --- Variances: closed form vs generic, and thread determinism ---

TEST(VarianceBackendTest, ClosedFormMatchesGenericUnitVectorLoop) {
  for (size_t r : {2u, 3u, 9u, 50u}) {
    for (double p : {0.15, 0.5, 0.8}) {
      RrMatrix m = RrMatrix::KeepUniform(r, p);
      std::vector<double> lambda = RandomRhs(1, r, r * 17 + 3)[0];
      for (double& x : lambda) x = std::fabs(x);
      double total = 0.0;
      for (double x : lambda) total += x;
      for (double& x : lambda) x /= total;
      const int64_t n = 20000;
      auto closed_form = EstimateVariances(m, lambda, n);
      ASSERT_TRUE(closed_form.ok());
      // Generic reference: solve the unit-vector systems against the
      // dense transpose and evaluate the multinomial sandwich directly.
      auto lu = linalg::LuDecomposition::Factor(m.ToDense().Transpose());
      ASSERT_TRUE(lu.ok());
      for (size_t u = 0; u < r; ++u) {
        std::vector<double> unit(r, 0.0);
        unit[u] = 1.0;
        std::vector<double> q = lu.value().Solve(unit);
        double second = 0.0;
        double first = 0.0;
        for (size_t v = 0; v < r; ++v) {
          second += lambda[v] * q[v] * q[v];
          first += lambda[v] * q[v];
        }
        double expected = (second - first * first) / static_cast<double>(n);
        if (expected < 0.0) expected = 0.0;
        EXPECT_NEAR(closed_form.value()[u], expected,
                    1e-9 * (1.0 + expected))
            << "r=" << r << " p=" << p << " u=" << u;
      }
    }
  }
}

TEST(VarianceBackendTest, DenseVariancesBitIdenticalAcrossThreads) {
  RrMatrix m = DenseRrMatrix(24, 1.4);
  std::vector<double> lambda(24, 1.0 / 24.0);
  auto baseline = EstimateVariances(m, lambda, 5000, EstimationOptions{1});
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    auto swept =
        EstimateVariances(m, lambda, 5000, EstimationOptions{threads});
    ASSERT_TRUE(swept.ok());
    EXPECT_EQ(swept.value(), baseline.value()) << "threads=" << threads;
  }
}

// --- Bugfix: magnitude-relative tolerances in structured detection ---

TEST(RelativeToleranceTest, DetectionAcceptsLargeScaleMatrices) {
  // At scale 1e8, representation noise alone exceeds the old absolute
  // 1e-12 cutoff; a relative tolerance must still detect the shape.
  const size_t n = 4;
  linalg::Matrix scaled(n, n, 1e8 * 0.1);
  for (size_t i = 0; i < n; ++i) scaled(i, i) = 1e8 * 0.7;
  scaled(1, 2) += 1e-6;  // 1e-14 relative: representation-level noise.
  auto detected = linalg::DetectUniformMixture(scaled);
  ASSERT_TRUE(detected.ok());
  EXPECT_DOUBLE_EQ(detected.value().diagonal, 1e8 * 0.7);
}

TEST(RelativeToleranceTest, DetectionRejectsSmallScaleImpostors) {
  // At scale 1e-10, entry differences as large as 0.1% of the entries
  // themselves sneak under an absolute 1e-12 cutoff; relative tolerance
  // must reject them.
  const size_t n = 3;
  linalg::Matrix tiny(n, n, 1e-10);
  for (size_t i = 0; i < n; ++i) tiny(i, i) = 7e-10;
  tiny(0, 1) += 1e-13;
  EXPECT_FALSE(linalg::DetectUniformMixture(tiny).ok());
}

TEST(RelativeToleranceTest, SingularityIsScaleInvariant) {
  // Nearly parallel rows at scale 1e8: the bulk eigenvalue is 1e-4 --
  // far above the old absolute 1e-300 floor -- but 1e-12 relative to the
  // principal eigenvalue, so inversion must refuse.
  linalg::UniformMixture large_singular{4, 1e8 + 1e-4, 1e8};
  EXPECT_TRUE(large_singular.IsSingular());
  EXPECT_FALSE(large_singular.ApplyInverse({1, 2, 3, 4}).ok());

  // Well-conditioned but denormal-range: not singular in the relative
  // sense, yet v/a would overflow to inf -- inversion must refuse rather
  // than return infinities.
  linalg::UniformMixture denormal{2, 2e-310, 1e-310};
  EXPECT_FALSE(denormal.IsSingular());
  EXPECT_FALSE(denormal.ApplyInverse({1.0, 2.0}).ok());

  // A perfectly conditioned matrix at scale 1e-150 must invert: scaling
  // M by s scales M^{-1} v by 1/s.
  double scale = 1e-150;
  linalg::UniformMixture tiny_regular{4, scale * 0.7, scale * 0.1};
  linalg::UniformMixture unit_regular{4, 0.7, 0.1};
  std::vector<double> v = {0.1, 0.4, 0.2, 0.3};
  auto tiny_solution = tiny_regular.ApplyInverse(v);
  auto unit_solution = unit_regular.ApplyInverse(v);
  ASSERT_TRUE(tiny_solution.ok());
  ASSERT_TRUE(unit_solution.ok());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(tiny_solution.value()[i] * scale, unit_solution.value()[i],
                1e-9 * std::fabs(unit_solution.value()[i]));
  }
}

// --- Bugfix: overflow-safe product-domain guard ---

Dataset WideDataset(size_t num_attributes, size_t cardinality) {
  std::vector<Attribute> schema;
  std::vector<std::vector<uint32_t>> columns;
  std::vector<std::string> categories;
  categories.reserve(cardinality);
  for (size_t v = 0; v < cardinality; ++v) {
    categories.push_back(std::to_string(v));
  }
  for (size_t j = 0; j < num_attributes; ++j) {
    schema.push_back(Attribute{"a" + std::to_string(j),
                               AttributeType::kNominal, categories});
    columns.push_back({0, 1});
  }
  return Dataset(schema, columns);
}

TEST(DomainGuardTest, CheckedSizeMatchesDomainSizeInRange) {
  Dataset data = WideDataset(3, 5);
  auto size = Domain::CheckedSizeForAttributes(data, {0, 1, 2});
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), Domain::ForAttributes(data, {0, 1, 2}).size());
  EXPECT_EQ(size.value(), 125u);
}

TEST(DomainGuardTest, CheckedSizeDetectsUint64Overflow) {
  // 8 attributes of cardinality 2^13: the product is 2^104, which wraps
  // a uint64 accumulator to a small number long before any "> 2^31"
  // comparison could fire.
  Dataset data = WideDataset(8, 1u << 13);
  std::vector<size_t> all = {0, 1, 2, 3, 4, 5, 6, 7};
  auto size = Domain::CheckedSizeForAttributes(data, all);
  ASSERT_FALSE(size.ok());
  EXPECT_EQ(size.status().code(), StatusCode::kInvalidArgument);
}

TEST(DomainGuardTest, RunRrJointRejectsOverflowingDomainGracefully) {
  Dataset data = WideDataset(8, 1u << 13);
  std::vector<size_t> all = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(71);
  auto result = RunRrJoint(data, all, 1.0, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DomainGuardTest, RunRrJointStillRejectsOversizedButRepresentable) {
  // 4 x 2^13 = 2^52: representable in 64 bits but far over the 2^31
  // materialization cap -- the existing OutOfRange contract.
  Dataset data = WideDataset(4, 1u << 13);
  std::vector<size_t> all = {0, 1, 2, 3};
  Rng rng(73);
  auto result = RunRrJoint(data, all, 1.0, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

// --- Bugfix: ConditionNumber convergence (regression pins) ---

TEST(ConditionNumberRegressionTest, StructuredClosedFormPin) {
  // KeepUniform(4, 0.6): a = 0.6, principal = 1.0 -> kappa = 1/0.6.
  EXPECT_NEAR(RrMatrix::KeepUniform(4, 0.6).ConditionNumber(), 1.0 / 0.6,
              1e-12);
}

TEST(ConditionNumberRegressionTest, DensePowerIterationPin) {
  // P = [[0.8, 0.2], [0.4, 0.6]]: PtP has eigenvalues
  // (1.2 +- sqrt(0.8)) / 2, so kappa = sqrt of their ratio.
  linalg::Matrix p(2, 2);
  p(0, 0) = 0.8;
  p(0, 1) = 0.2;
  p(1, 0) = 0.4;
  p(1, 1) = 0.6;
  auto m = RrMatrix::FromDense(p);
  ASSERT_TRUE(m.ok());
  ASSERT_FALSE(m.value().is_structured());
  double expected =
      std::sqrt((1.2 + std::sqrt(0.8)) / (1.2 - std::sqrt(0.8)));
  EXPECT_NEAR(m.value().ConditionNumber(), expected, 1e-9);
}

TEST(ConditionNumberRegressionTest, GeometricOrdinalIsFiniteAndStable) {
  // The early exit must not change the converged value: two evaluations
  // agree exactly, and the value is a sane finite conditioning estimate.
  RrMatrix m = DenseRrMatrix(8, 2.0);
  double first = m.ConditionNumber();
  double second = m.ConditionNumber();
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 1.0);
  EXPECT_LT(first, 1e6);
}

// --- The split joint frame: perturb + estimate == run ---

TEST(JointSplitTest, PerturbThenEstimateMatchesRunRrJoint) {
  Dataset data = WideDataset(2, 3);
  std::vector<size_t> attrs = {0, 1};
  Rng run_rng(97);
  auto combined = RunRrJoint(data, attrs, 1.5, run_rng);
  ASSERT_TRUE(combined.ok());

  Rng split_rng(97);
  auto perturbation =
      PerturbRrJoint(data, attrs, 1.5, SequentialPerturber(split_rng));
  ASSERT_TRUE(perturbation.ok());
  for (size_t threads : {1u, 4u}) {
    RrJointPerturbation copy = perturbation.value();
    auto estimated =
        EstimateRrJoint(std::move(copy), EstimationOptions{threads});
    ASSERT_TRUE(estimated.ok());
    EXPECT_EQ(estimated.value().randomized_codes,
              combined.value().randomized_codes);
    EXPECT_EQ(estimated.value().lambda, combined.value().lambda);
    EXPECT_EQ(estimated.value().raw_estimated,
              combined.value().raw_estimated);
    EXPECT_EQ(estimated.value().estimated, combined.value().estimated);
    EXPECT_EQ(estimated.value().epsilon, combined.value().epsilon);
  }
}

}  // namespace
}  // namespace mdrr
