#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/descriptive.h"

namespace mdrr {
namespace {

// Builds a dataset with a controlled dependence ladder:
// dep(A,B) > dep(C,D) > everything else ~ 0.
Dataset MakeLadderDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
      Attribute{"D", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(4);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(3));
    // B copies A 90% of the time: very strong dependence.
    uint32_t b = rng.Bernoulli(0.9) ? a : static_cast<uint32_t>(rng.UniformInt(3));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(2));
    // D copies C 60% of the time: moderate dependence.
    uint32_t d = rng.Bernoulli(0.6) ? c : static_cast<uint32_t>(rng.UniformInt(2));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(c);
    cols[3].push_back(d);
  }
  return Dataset(schema, std::move(cols));
}

TEST(OracleDependencesTest, ZeroEpsilonAndCorrectRanking) {
  Dataset ds = MakeLadderDataset(8000, 3);
  DependenceEstimate est = OracleDependences(ds);
  EXPECT_DOUBLE_EQ(est.epsilon, 0.0);
  EXPECT_GT(est.dependences(0, 1), est.dependences(2, 3));
  EXPECT_GT(est.dependences(2, 3), est.dependences(0, 2));
}

TEST(CovarianceAttenuationTest, PropositionOneHolds) {
  // Proposition 1: Cov(Ya, Yb) = pa pb Cov(Xa, Xb) for the keep/uniform
  // randomization. Verify empirically on correlated binary columns.
  const size_t n = 400000;
  Rng rng(17);
  std::vector<uint32_t> xa(n);
  std::vector<uint32_t> xb(n);
  for (size_t i = 0; i < n; ++i) {
    xa[i] = static_cast<uint32_t>(rng.UniformInt(2));
    xb[i] = rng.Bernoulli(0.8) ? xa[i] : static_cast<uint32_t>(rng.UniformInt(2));
  }
  const double pa = 0.6;
  const double pb = 0.4;
  RrMatrix ma = RrMatrix::KeepUniform(2, pa);
  RrMatrix mb = RrMatrix::KeepUniform(2, pb);
  std::vector<uint32_t> ya = ma.RandomizeColumn(xa, rng);
  std::vector<uint32_t> yb = mb.RandomizeColumn(xb, rng);

  auto to_double = [](const std::vector<uint32_t>& v) {
    return std::vector<double>(v.begin(), v.end());
  };
  double cov_x = stats::Covariance(to_double(xa), to_double(xb));
  double cov_y = stats::Covariance(to_double(ya), to_double(yb));
  EXPECT_NEAR(cov_y, pa * pb * cov_x, 0.004);
}

TEST(RandomizedResponseDependencesTest, AttenuatesButPreservesRanking) {
  // Corollary 1's consequence: the randomized-data dependences are smaller
  // but keep the ladder's order.
  Dataset ds = MakeLadderDataset(20000, 5);
  DependenceEstimate oracle = OracleDependences(ds);
  DependenceEstimate randomized =
      RandomizedResponseDependences(ds, /*keep_probability=*/0.7, /*seed=*/7);

  // Attenuation.
  EXPECT_LT(randomized.dependences(0, 1), oracle.dependences(0, 1));
  EXPECT_LT(randomized.dependences(2, 3), oracle.dependences(2, 3));
  // Ranking preservation.
  EXPECT_GT(randomized.dependences(0, 1), randomized.dependences(2, 3));
  EXPECT_GT(randomized.dependences(2, 3), randomized.dependences(0, 2));
  // Differentially private with finite budget.
  EXPECT_TRUE(std::isfinite(randomized.epsilon));
  EXPECT_GT(randomized.epsilon, 0.0);
}

TEST(SecureSumDependencesTest, ExactlyMatchesOracle) {
  // Section 4.2 computes exact bivariate distributions, so its dependence
  // matrix must equal the trusted-party matrix.
  Dataset ds = MakeLadderDataset(500, 11);
  auto secure =
      SecureSumDependences(ds, mpc::SimulationMode::kLiteralShares, 13);
  ASSERT_TRUE(secure.ok());
  DependenceEstimate oracle = OracleDependences(ds);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(secure.value().dependences(i, j),
                  oracle.dependences(i, j), 1e-9);
    }
  }
  // Releasing exact distributions is not differentially private.
  EXPECT_TRUE(std::isinf(secure.value().epsilon));
  EXPECT_GT(secure.value().messages, 0u);
}

TEST(PairwiseRrDependencesTest, HighKeepProbabilityApproachesOracle) {
  Dataset ds = MakeLadderDataset(30000, 19);
  DependenceEstimate oracle = OracleDependences(ds);
  auto pairwise = PairwiseRrDependences(
      ds, /*keep_probability=*/0.95, mpc::SimulationMode::kFastSimulation,
      /*seed=*/23);
  ASSERT_TRUE(pairwise.ok());
  // Strong pair recovered within noise.
  EXPECT_NEAR(pairwise.value().dependences(0, 1), oracle.dependences(0, 1),
              0.1);
  // Ranking preserved.
  EXPECT_GT(pairwise.value().dependences(0, 1),
            pairwise.value().dependences(2, 3));
  // Parallel-composition epsilon: finite.
  EXPECT_TRUE(std::isfinite(pairwise.value().epsilon));
}

TEST(PairwiseRrDependencesTest, EpsilonIsMaxPairEpsilon) {
  Dataset ds = MakeLadderDataset(200, 29);
  const double p = 0.5;
  auto pairwise = PairwiseRrDependences(
      ds, p, mpc::SimulationMode::kFastSimulation, 31);
  ASSERT_TRUE(pairwise.ok());
  // Largest pair domain is 3*3 = 9.
  RrMatrix largest = RrMatrix::KeepUniform(9, p);
  EXPECT_NEAR(pairwise.value().epsilon, largest.Epsilon(), 1e-9);
}

TEST(DependenceEstimatorsOnAdult, AllMethodsAgreeOnTopPair) {
  // On (a sample of) Adult, every estimator should identify
  // Marital-status <-> Relationship as the most dependent pair.
  Dataset ds = SynthesizeAdult(6000, 37);
  auto top_pair = [](const linalg::Matrix& deps) {
    size_t best_i = 0;
    size_t best_j = 1;
    for (size_t i = 0; i < deps.rows(); ++i) {
      for (size_t j = i + 1; j < deps.cols(); ++j) {
        if (deps(i, j) > deps(best_i, best_j)) {
          best_i = i;
          best_j = j;
        }
      }
    }
    return std::make_pair(best_i, best_j);
  };

  // In (real and synthetic) Adult the top pair is Relationship <-> Sex:
  // Husband/Wife determine Sex exactly and the V denominator is 1.
  auto expected = std::make_pair(static_cast<size_t>(kAdultRelationship),
                                 static_cast<size_t>(kAdultSex));
  EXPECT_EQ(top_pair(OracleDependences(ds).dependences), expected);
  EXPECT_EQ(top_pair(RandomizedResponseDependences(ds, 0.8, 41).dependences),
            expected);
  auto secure = SecureSumDependences(ds, mpc::SimulationMode::kFastSimulation,
                                     43);
  ASSERT_TRUE(secure.ok());
  EXPECT_EQ(top_pair(secure.value().dependences), expected);
  auto pairwise = PairwiseRrDependences(
      ds, 0.9, mpc::SimulationMode::kFastSimulation, 47);
  ASSERT_TRUE(pairwise.ok());
  EXPECT_EQ(top_pair(pairwise.value().dependences), expected);
}

}  // namespace
}  // namespace mdrr
