// Integration suite for the distributed release: at a fixed (seed,
// shard_size, rng) the coordinator/worker pipeline must produce the
// EXACT artifacts of the in-process sharded engine -- released data,
// marginals, epsilons, adjustment weights, synthetic data -- for 1, 2,
// and 4 worker processes and for both RNG policies. Plus the failure
// contract (fail-closed on disconnect and deadline, no partial
// transcript), the spec surface, and the collectd socket ingest path.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/clustering.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/net/coordinator.h"
#include "mdrr/net/frame.h"
#include "mdrr/net/protocol.h"
#include "mdrr/net/socket.h"
#include "mdrr/net/worker.h"
#include "mdrr/protocol/net_ingest.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

namespace release = ::mdrr::release;
namespace net = ::mdrr::net;
namespace protocol = ::mdrr::protocol;

constexpr uint64_t kSeed = 17;
constexpr size_t kRecords = 2000;
constexpr size_t kShard = 256;  // Many shards at 2000 records.
constexpr char kLoopback[] = "127.0.0.1";

Dataset TestData() { return SynthesizeAdult(kRecords, /*seed=*/5); }

release::ReleaseSpec BaseSpec(release::MechanismKind kind, RngKind rng) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = kind;
  spec.budget.keep_probability = 0.6;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  spec.execution.seed = kSeed;
  spec.execution.shard_size = kShard;
  spec.execution.rng = rng;
  return spec;
}

void ExpectSameData(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j)) << "column " << j;
  }
}

// Byte-for-byte equality of everything the release publishes.
void ExpectSameArtifacts(const release::ReleaseArtifacts& a,
                         const release::ReleaseArtifacts& b) {
  ExpectSameData(a.randomized, b.randomized);
  EXPECT_EQ(a.marginal_estimates, b.marginal_estimates);
  EXPECT_EQ(a.release_epsilon, b.release_epsilon);
  EXPECT_EQ(a.dependence_epsilon, b.dependence_epsilon);
  EXPECT_EQ(ClusteringToString(a.randomized, a.clustering),
            ClusteringToString(b.randomized, b.clustering));
  ASSERT_EQ(a.adjustment.has_value(), b.adjustment.has_value());
  if (a.adjustment.has_value()) {
    EXPECT_EQ(a.adjustment->weights, b.adjustment->weights);
    EXPECT_EQ(a.adjustment->iterations, b.adjustment->iterations);
  }
  ASSERT_EQ(a.synthetic.has_value(), b.synthetic.has_value());
  if (a.synthetic.has_value()) ExpectSameData(*a.synthetic, *b.synthetic);
}

release::ReleaseArtifacts MustRun(const release::ReleaseSpec& spec,
                                  const Dataset& data) {
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto artifacts = plan.value().Run();
  EXPECT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  return std::move(artifacts).value();
}

// Runs the spec distributed over `num_workers` in-process worker
// threads through a caller-hosted coordinator (ephemeral port).
release::ReleaseArtifacts MustRunDistributed(release::ReleaseSpec spec,
                                             const Dataset& data,
                                             size_t num_workers) {
  spec.execution.kind = release::PolicyKind::kDistributed;
  spec.execution.num_workers = num_workers;
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();

  net::CoordinatorOptions options;
  options.seed = spec.execution.seed;
  options.rng = spec.execution.rng;
  options.shard_size = spec.execution.shard_size;
  net::Coordinator coordinator(options);
  Status bound = coordinator.Listen(0);
  EXPECT_TRUE(bound.ok()) << bound.ToString();
  const uint16_t port = coordinator.port();

  std::vector<Status> worker_status(num_workers);
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([port, w, &worker_status] {
      worker_status[w] = net::RunWorker(kLoopback, port);
    });
  }
  Status accepted = coordinator.AcceptWorkers(num_workers);
  EXPECT_TRUE(accepted.ok()) << accepted.ToString();

  auto artifacts = plan.value().RunDistributed(coordinator);
  for (std::thread& worker : workers) worker.join();
  EXPECT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  for (size_t w = 0; w < num_workers; ++w) {
    EXPECT_TRUE(worker_status[w].ok())
        << "worker " << w << ": " << worker_status[w].ToString();
  }
  return std::move(artifacts).value();
}

// ---------------------------------------------------------------------------
// The bit-equality contract: distributed == in-process sharded, any
// worker count, both RNG policies, both mechanism families.
// ---------------------------------------------------------------------------

class DistributedEquality : public ::testing::TestWithParam<RngKind> {};

TEST_P(DistributedEquality, IndependentMatchesShardedAt124Workers) {
  Dataset data = TestData();
  release::ReleaseSpec spec =
      BaseSpec(release::MechanismKind::kIndependent, GetParam());
  spec.execution.kind = release::PolicyKind::kSharded;
  spec.execution.num_threads = 4;
  release::ReleaseArtifacts sharded = MustRun(spec, data);

  for (size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(testing::Message() << workers << " workers");
    release::ReleaseArtifacts distributed =
        MustRunDistributed(spec, data, workers);
    ExpectSameArtifacts(distributed, sharded);
  }
}

TEST_P(DistributedEquality, ClustersMatchesShardedAt124Workers) {
  Dataset data = TestData();
  release::ReleaseSpec spec =
      BaseSpec(release::MechanismKind::kClusters, GetParam());
  spec.execution.kind = release::PolicyKind::kSharded;
  spec.execution.num_threads = 4;
  release::ReleaseArtifacts sharded = MustRun(spec, data);

  for (size_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE(testing::Message() << workers << " workers");
    release::ReleaseArtifacts distributed =
        MustRunDistributed(spec, data, workers);
    ExpectSameArtifacts(distributed, sharded);
  }
}

INSTANTIATE_TEST_SUITE_P(BothRngs, DistributedEquality,
                         ::testing::Values(RngKind::kMt19937,
                                           RngKind::kPhilox),
                         [](const auto& info) {
                           return info.param == RngKind::kPhilox ? "philox"
                                                                 : "mt19937";
                         });

// ---------------------------------------------------------------------------
// Spec surface.
// ---------------------------------------------------------------------------

TEST(DistributedSpecTest, DistributedFieldsRoundTripThroughText) {
  release::ReleaseSpec spec =
      BaseSpec(release::MechanismKind::kIndependent, RngKind::kPhilox);
  spec.execution.kind = release::PolicyKind::kDistributed;
  spec.execution.num_workers = 3;
  spec.execution.listen_port = 7117;
  spec.execution.worker_deadline_ms = 2500;
  std::string text = release::PrintReleaseSpec(spec);
  auto parsed = release::ParseReleaseSpec(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().execution == spec.execution);
  EXPECT_EQ(release::PrintReleaseSpec(parsed.value()), text);
}

TEST(DistributedSpecTest, ValidationRejectsContradictions) {
  Dataset data = TestData();
  release::ReleaseSpec spec =
      BaseSpec(release::MechanismKind::kIndependent, RngKind::kMt19937);

  // Distributed without workers.
  spec.execution.kind = release::PolicyKind::kDistributed;
  spec.execution.num_workers = 0;
  EXPECT_FALSE(release::ReleasePlanner::Plan(spec, &data).ok());

  // Distributed knobs on a non-distributed policy.
  spec.execution.kind = release::PolicyKind::kSharded;
  spec.execution.num_workers = 2;
  EXPECT_FALSE(release::ReleasePlanner::Plan(spec, &data).ok());

  // Streaming and distributed are exclusive.
  spec.execution.kind = release::PolicyKind::kDistributed;
  spec.streaming.enabled = true;
  spec.streaming.window_size = 100;
  EXPECT_FALSE(release::ReleasePlanner::Plan(spec, &data).ok());
}

TEST(DistributedSpecTest, ControllerPlanRejectsDistributed) {
  release::ExecutionPolicy policy;
  policy.kind = release::PolicyKind::kDistributed;
  policy.num_workers = 2;
  EXPECT_FALSE(
      release::ReleasePlanner::PlanController(ClusteringOptions{}, policy)
          .ok());
}

// ---------------------------------------------------------------------------
// Failure contract: fail-closed, never a partial transcript.
// ---------------------------------------------------------------------------

TEST(DistributedFailureTest, AcceptDeadlineExpiresWithoutWorkers) {
  net::CoordinatorOptions options;
  options.deadline_ms = 100;
  net::Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  Status accepted = coordinator.AcceptWorkers(1);
  EXPECT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.code(), StatusCode::kDeadlineExceeded)
      << accepted.ToString();
}

TEST(DistributedFailureTest, WorkerDisconnectAbortsTheRelease) {
  Dataset data = TestData();
  release::ReleaseSpec spec =
      BaseSpec(release::MechanismKind::kIndependent, RngKind::kMt19937);
  spec.execution.kind = release::PolicyKind::kDistributed;
  spec.execution.num_workers = 1;
  spec.execution.worker_deadline_ms = 2000;
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  net::CoordinatorOptions options;
  options.seed = spec.execution.seed;
  options.rng = spec.execution.rng;
  options.shard_size = spec.execution.shard_size;
  options.deadline_ms = 2000;
  net::Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  const uint16_t port = coordinator.port();

  // A worker that handshakes correctly, then vanishes before serving
  // any assignment.
  std::thread ghost([port] {
    auto conn = net::TcpConnection::Connect(kLoopback, port, 2000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    Status hello =
        net::ClientHandshake(conn.value(), net::PeerRole::kWorker, 2000);
    EXPECT_TRUE(hello.ok()) << hello.ToString();
    // Destructor closes the socket: the coordinator's next exchange
    // with this worker fails.
  });
  ASSERT_TRUE(coordinator.AcceptWorkers(1).ok());
  ghost.join();

  auto artifacts = plan.value().RunDistributed(coordinator);
  EXPECT_FALSE(artifacts.ok());
  // Poisoned for good: the release cannot be committed afterwards.
  EXPECT_FALSE(coordinator.Commit().ok());
}

TEST(DistributedFailureTest, HandshakeRejectsWrongVersion) {
  net::CoordinatorOptions options;
  options.deadline_ms = 2000;
  net::Coordinator coordinator(options);
  ASSERT_TRUE(coordinator.Listen(0).ok());
  const uint16_t port = coordinator.port();

  std::thread impostor([port] {
    auto conn = net::TcpConnection::Connect(kLoopback, port, 2000);
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    net::HelloMsg hello;
    hello.magic = net::kProtocolMagic;
    hello.version = net::kProtocolVersion + 1;
    hello.role = net::PeerRole::kWorker;
    Status sent = conn.value().SendFrame(net::FrameType::kHello,
                                         net::EncodeHello(hello), 2000);
    EXPECT_TRUE(sent.ok()) << sent.ToString();
    // The server answers with Abort, not HelloAck.
    auto reply = conn.value().RecvFrame(2000);
    if (reply.ok()) {
      EXPECT_EQ(reply.value().type, net::FrameType::kAbort);
    }
  });
  Status accepted = coordinator.AcceptWorkers(1);
  impostor.join();
  EXPECT_FALSE(accepted.ok());
}

// ---------------------------------------------------------------------------
// Socket ingest (the collectd endpoint): the served transcript is the
// in-process replay transcript, byte for byte.
// ---------------------------------------------------------------------------

class SocketIngest : public ::testing::TestWithParam<RngKind> {};

TEST_P(SocketIngest, ServedTranscriptMatchesInProcessReplay) {
  Dataset data = SynthesizeAdult(600, /*seed=*/3);
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.budget.keep_probability = 0.6;
  spec.streaming.enabled = true;
  spec.streaming.window_size = 200;
  spec.execution.seed = kSeed;
  spec.execution.rng = GetParam();

  protocol::StreamingReplayOptions replay_options;
  auto replay = protocol::RunStreamingReplay(spec, data, replay_options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  net::TcpListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  const uint16_t port = listener.port();

  StatusOr<protocol::StreamServeResult> served =
      Status::Internal("server never ran");
  std::thread server([&] {
    protocol::StreamIngestServeOptions options;
    options.deadline_ms = 5000;
    served = protocol::ServeStreamIngest(spec, listener, options);
  });

  protocol::StreamIngestClientOptions client_options;
  client_options.batch_size = 128;
  client_options.deadline_ms = 5000;
  auto sent = protocol::StreamReportsOverSocket(spec, data, kLoopback, port,
                                                client_options);
  server.join();
  ASSERT_TRUE(sent.ok()) << sent.status().ToString();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  EXPECT_EQ(release::PrintStreamWindows(served.value().windows),
            release::PrintStreamWindows(replay.value().windows));
  EXPECT_EQ(served.value().reports_ingested,
            replay.value().reports_ingested);
  EXPECT_EQ(served.value().epsilon_spent, replay.value().epsilon_spent);
  EXPECT_EQ(sent.value().reports_ingested, served.value().reports_ingested);
}

INSTANTIATE_TEST_SUITE_P(BothRngs, SocketIngest,
                         ::testing::Values(RngKind::kMt19937,
                                           RngKind::kPhilox),
                         [](const auto& info) {
                           return info.param == RngKind::kPhilox ? "philox"
                                                                 : "mt19937";
                         });

}  // namespace
}  // namespace mdrr
