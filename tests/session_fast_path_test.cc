// Golden tests for the batched session fast path: every optimization it
// layers on top of the per-party reference loop -- the specialized seed
// sequence, the lane-batched engine seeding, the columnar sweeps with
// fused counting/decode -- must leave the published transcript bit-wise
// unchanged.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/clustering.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/protocol/party_block.h"
#include "mdrr/protocol/session.h"
#include "mdrr/rng/fast_seed.h"
#include "mdrr/rng/rng.h"

namespace mdrr::protocol {
namespace {

Dataset MakeCorrelatedDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
      Attribute{"D", AttributeType::kNominal, {"0", "1", "2", "3"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(4);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Discrete({0.5, 0.3, 0.2}));
    uint32_t b =
        rng.Bernoulli(0.85) ? a : static_cast<uint32_t>(rng.UniformInt(3));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(static_cast<uint32_t>(rng.UniformInt(2)));
    cols[3].push_back(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  return Dataset(schema, std::move(cols));
}

// --- Seeding layer. ---

TEST(FastSeedTest, FourWordSeedSeqMatchesStdSeedSeq) {
  Rng seed_source(99);
  for (int trial = 0; trial < 200; ++trial) {
    uint64_t seed = seed_source.engine()();
    uint64_t state = seed;
    std::seed_seq reference_seq{SplitMix64Next(state), SplitMix64Next(state),
                                SplitMix64Next(state), SplitMix64Next(state)};
    std::mt19937_64 reference(reference_seq);
    FourWordSeedSeq fast_seq(seed);
    std::mt19937_64 fast(fast_seq);
    // 700 draws cross the engine's 312-word twist boundary twice, so a
    // seeding divergence anywhere in the state would surface.
    for (int draw = 0; draw < 700; ++draw) {
      ASSERT_EQ(reference(), fast()) << "seed " << seed << " draw " << draw;
    }
  }
}

TEST(FastSeedTest, GenericRequestLengthsMatchStdSeedSeq) {
  for (size_t request : {size_t{0}, size_t{1}, size_t{5}, size_t{40},
                         size_t{623}, size_t{625}, size_t{1248}}) {
    // FourWordSeedSeq(77) expands 77 through SplitMix64; hand the same
    // four entropy words to a std::seed_seq and compare raw generate().
    uint64_t state = 77;
    uint64_t e0 = SplitMix64Next(state), e1 = SplitMix64Next(state);
    uint64_t e2 = SplitMix64Next(state), e3 = SplitMix64Next(state);
    std::seed_seq expanded_ref{e0, e1, e2, e3};
    std::vector<uint32_t> want(request), got(request);
    expanded_ref.generate(want.begin(), want.end());
    FourWordSeedSeq fast(77);
    fast.generate(got.begin(), got.end());
    EXPECT_EQ(want, got) << "request length " << request;
  }
}

TEST(FastSeedTest, SeedRngRangeMatchesPerPartyConstruction) {
  for (size_t count : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{64}, size_t{130}}) {
    std::vector<uint64_t> seeds(count);
    Rng seed_source(11 + count);
    for (uint64_t& s : seeds) s = seed_source.engine()();

    std::vector<Rng> batch(count, Rng(0));
    SeedRngRange(seeds.data(), count, batch.data());
    for (size_t i = 0; i < count; ++i) {
      Rng reference(seeds[i]);
      for (int draw = 0; draw < 350; ++draw) {
        ASSERT_EQ(reference.engine()(), batch[i].engine()())
            << "count " << count << " rng " << i << " draw " << draw;
      }
    }
  }
}

// --- PartyBlock sweeps vs the Party object loop. ---

TEST(PartyBlockTest, Round1MatchesPartyLoopBitwise) {
  const size_t n = 5000;
  Dataset data = MakeCorrelatedDataset(n, 21);
  const size_t m = data.num_attributes();
  std::vector<RrMatrix> matrices;
  for (size_t j = 0; j < m; ++j) {
    matrices.push_back(
        RrMatrix::KeepUniform(data.attribute(j).cardinality(), 0.7));
  }

  Rng loop_seeder(5);
  std::vector<Party> parties;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> record(m);
    for (size_t j = 0; j < m; ++j) record[j] = data.at(i, j);
    parties.emplace_back(i, std::move(record), loop_seeder.engine()());
  }
  std::vector<std::vector<uint32_t>> expected(m, std::vector<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> published = parties[i].PublishIndependent(matrices);
    for (size_t j = 0; j < m; ++j) expected[j][i] = published[j];
  }

  Rng block_seeder(5);
  PartyBlock block(data, block_seeder);
  std::vector<std::vector<uint32_t>> actual(m, std::vector<uint32_t>(n));
  block.PublishIndependent(matrices, /*shard_size=*/701, /*num_threads=*/1,
                           &actual);
  EXPECT_EQ(expected, actual);
}

TEST(PartyBlockTest, Round2MatchesPartyLoopBitwise) {
  const size_t n = 5000;
  Dataset data = MakeCorrelatedDataset(n, 22);
  const size_t m = data.num_attributes();
  AttributeClustering clusters = {{0, 1}, {2}, {3}};
  std::vector<Domain> domains;
  std::vector<RrMatrix> matrices;
  for (const std::vector<size_t>& cluster : clusters) {
    domains.push_back(Domain::ForAttributes(data, cluster));
    matrices.push_back(RrMatrix::KeepUniform(
        static_cast<size_t>(domains.back().size()), 0.6));
  }
  std::vector<RrMatrix> round1;
  for (size_t j = 0; j < m; ++j) {
    round1.push_back(
        RrMatrix::KeepUniform(data.attribute(j).cardinality(), 0.8));
  }

  // Reference: both rounds through Party objects, so round 2 continues
  // each party's round-1 stream exactly as in a real session.
  Rng loop_seeder(7);
  std::vector<Party> parties;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> record(m);
    for (size_t j = 0; j < m; ++j) record[j] = data.at(i, j);
    parties.emplace_back(i, std::move(record), loop_seeder.engine()());
  }
  std::vector<std::vector<uint32_t>> expected_codes(
      clusters.size(), std::vector<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    parties[i].PublishIndependent(round1);
    std::vector<uint32_t> published =
        parties[i].PublishClusters(clusters, domains, matrices);
    for (size_t c = 0; c < clusters.size(); ++c) {
      expected_codes[c][i] = published[c];
    }
  }

  Rng block_seeder(7);
  PartyBlock block(data, block_seeder);
  std::vector<std::vector<uint32_t>> round1_columns(
      m, std::vector<uint32_t>(n));
  block.PublishIndependent(round1, /*shard_size=*/1024, /*num_threads=*/1,
                           &round1_columns);
  ClusterSweepResult sweep = block.PublishClusters(
      clusters, domains, matrices, /*shard_size=*/1024, /*num_threads=*/1,
      /*collect_codes=*/true);
  EXPECT_EQ(expected_codes, sweep.codes);

  // The fused by-products must equal their post-hoc equivalents.
  for (size_t c = 0; c < clusters.size(); ++c) {
    std::vector<int64_t> histogram(matrices[c].size(), 0);
    for (uint32_t code : expected_codes[c]) ++histogram[code];
    EXPECT_EQ(histogram, sweep.counts[c]) << "cluster " << c;
    for (size_t k = 0; k < clusters[c].size(); ++k) {
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(domains[c].DecodeAt(expected_codes[c][i], k),
                  sweep.decoded[c][k][i])
            << "cluster " << c << " position " << k << " party " << i;
      }
    }
  }
}

TEST(PartyBlockTest, ShardGrainAndLaneTailsNeverChangePublications) {
  const size_t n = 1037;  // Prime-ish: exercises ragged lane tails.
  Dataset data = MakeCorrelatedDataset(n, 23);
  const size_t m = data.num_attributes();
  std::vector<RrMatrix> matrices;
  for (size_t j = 0; j < m; ++j) {
    matrices.push_back(
        RrMatrix::KeepUniform(data.attribute(j).cardinality(), 0.7));
  }
  std::vector<std::vector<uint32_t>> reference;
  for (size_t shard_size : {size_t{1}, size_t{3}, size_t{8}, size_t{64},
                            size_t{1037}, size_t{4096}}) {
    Rng seeder(13);
    PartyBlock block(data, seeder);
    std::vector<std::vector<uint32_t>> columns(m, std::vector<uint32_t>(n));
    block.PublishIndependent(matrices, shard_size, /*num_threads=*/2,
                             &columns);
    if (reference.empty()) {
      reference = std::move(columns);
    } else {
      EXPECT_EQ(reference, columns) << "shard_size " << shard_size;
    }
  }
}

// --- Full sessions. ---

void ExpectSessionsEqual(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.clusters, b.clusters);
  EXPECT_EQ(a.cluster_joints, b.cluster_joints);
  EXPECT_EQ(a.round1_epsilon, b.round1_epsilon);
  EXPECT_EQ(a.round2_epsilon, b.round2_epsilon);
  EXPECT_EQ(a.messages_round1, b.messages_round1);
  EXPECT_EQ(a.messages_broadcast, b.messages_broadcast);
  EXPECT_EQ(a.messages_round2, b.messages_round2);
  ASSERT_EQ(a.randomized.num_attributes(), b.randomized.num_attributes());
  for (size_t j = 0; j < a.randomized.num_attributes(); ++j) {
    EXPECT_EQ(a.randomized.column(j), b.randomized.column(j))
        << "column " << j;
  }
}

TEST(SessionFastPathTest, BatchedMatchesPartyLoopOnCorrelatedData) {
  Dataset data = MakeCorrelatedDataset(20000, 31);
  SessionOptions options;
  options.keep_probability = 0.8;
  options.round1_keep_probability = 0.8;
  options.clustering = ClusteringOptions{20.0, 0.1};
  options.seed = 5;

  options.execution = SessionExecution::kPartyLoop;
  auto reference = RunDistributedSession(data, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  options.execution = SessionExecution::kBatched;
  auto batched = RunDistributedSession(data, options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ExpectSessionsEqual(reference.value(), batched.value());
}

TEST(SessionFastPathTest, BatchedMatchesPartyLoopOnAdultSample) {
  Dataset adult = SynthesizeAdult(8000, 17);
  SessionOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  options.seed = 42;

  options.execution = SessionExecution::kPartyLoop;
  auto reference = RunDistributedSession(adult, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  options.execution = SessionExecution::kBatched;
  auto batched = RunDistributedSession(adult, options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ExpectSessionsEqual(reference.value(), batched.value());
}

TEST(SessionFastPathTest, MessageAccountingMatchesPartyCount) {
  Dataset data = MakeCorrelatedDataset(750, 33);
  SessionOptions options;
  options.clustering = ClusteringOptions{20.0, 0.1};
  options.execution = SessionExecution::kBatched;
  auto session = RunDistributedSession(data, options);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().messages_round1, 750u);
  EXPECT_EQ(session.value().messages_broadcast, 750u);
  EXPECT_EQ(session.value().messages_round2, 750u);
}

TEST(SessionFastPathTest, BatchedThreadSweepIsBitIdentical) {
  Dataset adult = SynthesizeAdult(6000, 19);
  SessionOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  options.seed = 3;
  options.execution = SessionExecution::kBatched;
  options.shard_size = 512;  // Several shards per worker at every count.

  options.num_threads = 1;
  auto reference = RunDistributedSession(adult, options);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    options.num_threads = threads;
    auto run = RunDistributedSession(adult, options);
    ASSERT_TRUE(run.ok());
    ExpectSessionsEqual(reference.value(), run.value());
  }
}

TEST(SessionFastPathTest, PartyLoopThreadSweepIsBitIdentical) {
  Dataset adult = SynthesizeAdult(4000, 29);
  SessionOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  options.seed = 8;
  options.execution = SessionExecution::kPartyLoop;
  options.shard_size = 512;

  options.num_threads = 1;
  auto reference = RunDistributedSession(adult, options);
  ASSERT_TRUE(reference.ok());
  for (size_t threads : {size_t{2}, size_t{8}}) {
    options.num_threads = threads;
    auto run = RunDistributedSession(adult, options);
    ASSERT_TRUE(run.ok());
    ExpectSessionsEqual(reference.value(), run.value());
  }
}

TEST(SessionFastPathTest, TinySessionsRunOnBothPaths) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{7}, size_t{9}}) {
    Dataset data = MakeCorrelatedDataset(n, 100 + n);
    SessionOptions options;
    options.clustering = ClusteringOptions{20.0, 0.1};
    options.execution = SessionExecution::kPartyLoop;
    auto reference = RunDistributedSession(data, options);
    ASSERT_TRUE(reference.ok()) << "n " << n;
    options.execution = SessionExecution::kBatched;
    auto batched = RunDistributedSession(data, options);
    ASSERT_TRUE(batched.ok()) << "n " << n;
    ExpectSessionsEqual(reference.value(), batched.value());
  }
}

}  // namespace
}  // namespace mdrr::protocol
