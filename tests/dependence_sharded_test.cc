// The sharded dependence-estimator contract: the Section 4.2/4.3
// estimators and the Section 4.1 publication are keyed by (stream,
// element), so their output is bit-identical at every thread count and
// shard grain under both RNG policies; the redesigned pair-order
// transcripts are pinned by content hash; and the SIMD-lane alias
// lookup is bitwise identical to the scalar draw plan at every
// alignment and tail length.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/dependence_estimators.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/matrix.h"
#include "mdrr/rng/alias_sampler.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

// Same controlled dependence ladder as dependence_estimators_test.cc:
// dep(A,B) > dep(C,D) > everything else ~ 0. All-nominal, so every
// sharded statistic is bitwise equal to its sequential counterpart.
Dataset MakeLadderDataset(size_t n, uint64_t seed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"C", AttributeType::kNominal, {"0", "1"}},
      Attribute{"D", AttributeType::kNominal, {"0", "1"}},
  };
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> cols(4);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(3));
    uint32_t b =
        rng.Bernoulli(0.9) ? a : static_cast<uint32_t>(rng.UniformInt(3));
    uint32_t c = static_cast<uint32_t>(rng.UniformInt(2));
    uint32_t d =
        rng.Bernoulli(0.6) ? c : static_cast<uint32_t>(rng.UniformInt(2));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(c);
    cols[3].push_back(d);
  }
  return Dataset(schema, std::move(cols));
}

// m binary attributes with a sliding copy chain, for pair-grid sweeps
// from a single pair (m = 2) up past the worker count.
Dataset MakeWideDataset(size_t m, size_t n, uint64_t seed) {
  std::vector<Attribute> schema;
  std::vector<std::vector<uint32_t>> cols(m);
  Rng rng(seed);
  for (size_t j = 0; j < m; ++j) {
    schema.push_back(Attribute{"x" + std::to_string(j),
                               AttributeType::kNominal,
                               {"0", "1"}});
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t prev = 0;
    for (size_t j = 0; j < m; ++j) {
      uint32_t v = (j > 0 && rng.Bernoulli(0.7))
                       ? prev
                       : static_cast<uint32_t>(rng.UniformInt(2));
      cols[j].push_back(v);
      prev = v;
    }
  }
  return Dataset(std::move(schema), std::move(cols));
}

DependenceEstimatorOptions MakeOptions(RngKind rng, size_t threads,
                                       size_t grain) {
  DependenceEstimatorOptions options;
  options.rng = rng;
  options.sharding.num_threads = threads;
  options.sharding.record_chunk_size = grain;
  return options;
}

void ExpectSameMatrix(const linalg::Matrix& a, const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << "entry (" << i << ", " << j << ")";
    }
  }
}

void ExpectSameEstimate(const DependenceEstimate& a,
                        const DependenceEstimate& b) {
  ExpectSameMatrix(a.dependences, b.dependences);
  EXPECT_EQ(a.epsilon, b.epsilon);
  EXPECT_EQ(a.messages, b.messages);
}

// FNV-1a over the matrix bytes: the pinned-transcript fingerprint (same
// constants as rng_policy_test.cc).
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

uint64_t HashMatrix(const linalg::Matrix& m) {
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      double v = m(i, j);
      const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&v);
      for (size_t k = 0; k < sizeof(v); ++k) {
        h ^= bytes[k];
        h *= 0x100000001b3ull;
      }
    }
  }
  return h;
}

const size_t kThreadSweep[] = {1, 2, 4, 8};
const size_t kGrainSweep[] = {32, 1024, 65536};

// ---------------------------------------------------------------------------
// Secure sum (Section 4.2): pair-grid + record-range sharding.
// ---------------------------------------------------------------------------

TEST(SecureSumShardedTest, FastSimInvariantAcrossThreadsGrainsAndPolicies) {
  Dataset ds = MakeLadderDataset(5000, 11);
  auto sequential =
      SecureSumDependences(ds, mpc::SimulationMode::kFastSimulation, 13);
  ASSERT_TRUE(sequential.ok());
  for (RngKind rng : {RngKind::kMt19937, RngKind::kPhilox}) {
    for (size_t threads : kThreadSweep) {
      for (size_t grain : kGrainSweep) {
        auto run = SecureSumDependences(
            ds, mpc::SimulationMode::kFastSimulation, 13,
            MakeOptions(rng, threads, grain));
        ASSERT_TRUE(run.ok()) << "threads=" << threads << " grain=" << grain;
        // The secure sums are exact, so every policy and schedule must
        // reproduce the sequential estimate bit for bit.
        ExpectSameEstimate(sequential.value(), run.value());
      }
    }
  }
}

TEST(SecureSumShardedTest, LiteralSharesInvariantAcrossThreadsAndGrains) {
  Dataset ds = MakeLadderDataset(200, 17);
  for (RngKind rng : {RngKind::kMt19937, RngKind::kPhilox}) {
    auto baseline = SecureSumDependences(
        ds, mpc::SimulationMode::kLiteralShares, 19,
        MakeOptions(rng, 1, 64));
    ASSERT_TRUE(baseline.ok());
    for (size_t threads : kThreadSweep) {
      for (size_t grain : kGrainSweep) {
        auto run = SecureSumDependences(
            ds, mpc::SimulationMode::kLiteralShares, 19,
            MakeOptions(rng, threads, grain));
        ASSERT_TRUE(run.ok()) << "threads=" << threads << " grain=" << grain;
        ExpectSameEstimate(baseline.value(), run.value());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pairwise RR (Section 4.3): stream-per-pair masking + sharded counting.
// ---------------------------------------------------------------------------

TEST(PairwiseRrShardedTest, FastSimInvariantAcrossThreadsAndGrains) {
  Dataset ds = MakeLadderDataset(3000, 23);
  for (RngKind rng : {RngKind::kMt19937, RngKind::kPhilox}) {
    auto baseline = PairwiseRrDependences(
        ds, 0.7, mpc::SimulationMode::kFastSimulation, 29,
        MakeOptions(rng, 1, 64));
    ASSERT_TRUE(baseline.ok());
    for (size_t threads : kThreadSweep) {
      for (size_t grain : kGrainSweep) {
        auto run = PairwiseRrDependences(
            ds, 0.7, mpc::SimulationMode::kFastSimulation, 29,
            MakeOptions(rng, threads, grain));
        ASSERT_TRUE(run.ok()) << "threads=" << threads << " grain=" << grain;
        ExpectSameEstimate(baseline.value(), run.value());
      }
    }
  }
}

TEST(PairwiseRrShardedTest, LiteralSharesInvariantAcrossThreadsAndGrains) {
  Dataset ds = MakeLadderDataset(150, 31);
  for (RngKind rng : {RngKind::kMt19937, RngKind::kPhilox}) {
    auto baseline = PairwiseRrDependences(
        ds, 0.6, mpc::SimulationMode::kLiteralShares, 37,
        MakeOptions(rng, 1, 64));
    ASSERT_TRUE(baseline.ok());
    for (size_t threads : kThreadSweep) {
      for (size_t grain : kGrainSweep) {
        auto run = PairwiseRrDependences(
            ds, 0.6, mpc::SimulationMode::kLiteralShares, 37,
            MakeOptions(rng, threads, grain));
        ASSERT_TRUE(run.ok()) << "threads=" << threads << " grain=" << grain;
        ExpectSameEstimate(baseline.value(), run.value());
      }
    }
  }
}

TEST(PairwiseRrShardedTest, PairGridSweepFromSinglePairPastWorkerCount) {
  // m = 2 is the single-pair edge (record-range regime at any worker
  // count); m = 9 gives 36 pairs (pair-grid regime even at 8 workers).
  for (size_t m = 2; m <= 9; ++m) {
    Dataset ds = MakeWideDataset(m, 600, 41 + m);
    for (RngKind rng : {RngKind::kMt19937, RngKind::kPhilox}) {
      auto baseline = PairwiseRrDependences(
          ds, 0.7, mpc::SimulationMode::kFastSimulation, 43,
          MakeOptions(rng, 1, 128));
      ASSERT_TRUE(baseline.ok());
      for (size_t threads : {3u, 8u}) {
        auto run = PairwiseRrDependences(
            ds, 0.7, mpc::SimulationMode::kFastSimulation, 43,
            MakeOptions(rng, threads, 128));
        ASSERT_TRUE(run.ok()) << "m=" << m << " threads=" << threads;
        ExpectSameEstimate(baseline.value(), run.value());
      }
      auto secure = SecureSumDependences(
          ds, mpc::SimulationMode::kFastSimulation, 47,
          MakeOptions(rng, 1, 128));
      ASSERT_TRUE(secure.ok());
      for (size_t threads : {3u, 8u}) {
        auto run = SecureSumDependences(
            ds, mpc::SimulationMode::kFastSimulation, 47,
            MakeOptions(rng, threads, 128));
        ASSERT_TRUE(run.ok()) << "m=" << m << " threads=" << threads;
        ExpectSameEstimate(secure.value(), run.value());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Section 4.1 publication: philox shards the publication itself.
// ---------------------------------------------------------------------------

TEST(RandomizedResponseShardedTest, PhiloxInvariantAcrossThreadsAndGrains) {
  Dataset ds = MakeLadderDataset(2500, 53);
  DependenceEstimate baseline = RandomizedResponseDependencesSharded(
      ds, 0.7, 59, MakeOptions(RngKind::kPhilox, 1, 64));
  for (size_t threads : kThreadSweep) {
    for (size_t grain : kGrainSweep) {
      DependenceEstimate run = RandomizedResponseDependencesSharded(
          ds, 0.7, 59, MakeOptions(RngKind::kPhilox, threads, grain));
      ExpectSameEstimate(baseline, run);
    }
  }
}

TEST(RandomizedResponseShardedTest, MtReplaysSequentialTranscript) {
  // The mt19937 publication is one privacy-budgeted interaction whose
  // draws must not depend on the worker count: the sharded form replays
  // RandomizedResponseDependences' single-stream transcript, and on
  // all-nominal data the sharded statistics are bitwise equal too.
  Dataset ds = MakeLadderDataset(1500, 61);
  DependenceEstimate sequential = RandomizedResponseDependences(ds, 0.7, 67);
  for (size_t threads : {1u, 4u}) {
    DependenceEstimate sharded = RandomizedResponseDependencesSharded(
        ds, 0.7, 67, MakeOptions(RngKind::kMt19937, threads, 256));
    ExpectSameEstimate(sequential, sharded);
    // The back-compat overload is the same mt19937 path.
    DependenceShardingOptions sharding;
    sharding.num_threads = threads;
    sharding.record_chunk_size = 256;
    DependenceEstimate compat =
        RandomizedResponseDependencesSharded(ds, 0.7, 67, sharding);
    ExpectSameEstimate(sequential, compat);
  }
}

// ---------------------------------------------------------------------------
// Redesigned pair-order transcripts: content-hash pins.
// ---------------------------------------------------------------------------

// The estimators draw on stream 1 + p per pair (1 + j per attribute for
// the Section 4.1 publication) instead of one consumed-in-order stream.
// These hashes pin the redesigned draw plans; a change in stream
// addressing, draw order, or the reduction arithmetic shows up here.
TEST(DependenceTranscriptGoldens, PairwiseRrMtTranscript) {
  Dataset ds = MakeLadderDataset(400, 71);
  auto run = PairwiseRrDependences(
      ds, 0.6, mpc::SimulationMode::kFastSimulation, 73,
      MakeOptions(RngKind::kMt19937, 4, 64));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(HashMatrix(run.value().dependences), 0xf41fe8a5146b4889ull);
}

TEST(DependenceTranscriptGoldens, PairwiseRrPhiloxTranscript) {
  Dataset ds = MakeLadderDataset(400, 71);
  auto run = PairwiseRrDependences(
      ds, 0.6, mpc::SimulationMode::kFastSimulation, 73,
      MakeOptions(RngKind::kPhilox, 4, 64));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(HashMatrix(run.value().dependences), 0xc5396469b40cb3c9ull);
}

TEST(DependenceTranscriptGoldens, SecureSumLiteralTranscript) {
  // Literal share draws cancel, so this pin is seed-independent; it
  // guards the exactness of the protocol output under sharding.
  Dataset ds = MakeLadderDataset(120, 79);
  auto run = SecureSumDependences(
      ds, mpc::SimulationMode::kLiteralShares, 83,
      MakeOptions(RngKind::kPhilox, 4, 64));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(HashMatrix(run.value().dependences), 0xdc9ced8855ec02b1ull);
}

TEST(DependenceTranscriptGoldens, RandomizedResponsePhiloxTranscript) {
  Dataset ds = MakeLadderDataset(400, 71);
  DependenceEstimate run = RandomizedResponseDependencesSharded(
      ds, 0.7, 89, MakeOptions(RngKind::kPhilox, 4, 64));
  EXPECT_EQ(HashMatrix(run.dependences), 0x166b3e0b034159e1ull);
}

// ---------------------------------------------------------------------------
// SIMD-lane alias lookup: bitwise identical to the scalar draw plan.
// ---------------------------------------------------------------------------

TEST(AliasLookupSimdTest, MatchesScalarAtAllAlignmentsAndTailLengths) {
  AliasSampler sampler(
      std::vector<double>{0.5, 1.5, 3.0, 0.25, 2.0, 1.0, 0.75, 4.0});
  constexpr size_t kMax = 64;
  std::vector<double> units(kMax);
  std::vector<uint64_t> raws(kMax);
  PhiloxFillElementDraws(/*seed=*/91, /*stream=*/3, /*first=*/0, kMax,
                         units.data(), raws.data());
  // Sweep every start offset (memory alignment of the lane loads) and
  // every count through several SIMD widths plus tails, including 0.
  for (size_t offset = 0; offset < 5; ++offset) {
    for (size_t count = 0; count <= 20; ++count) {
      std::vector<uint32_t> block(count, 0xffffffffu);
      sampler.SampleBlock(units.data() + offset, raws.data() + offset, count,
                          block.data());
      for (size_t k = 0; k < count; ++k) {
        EXPECT_EQ(block[k],
                  sampler.SampleFrom(units[offset + k], raws[offset + k]))
            << "offset=" << offset << " k=" << k;
      }
    }
  }
}

TEST(AliasLookupSimdTest, MultiRowLookupMatchesPerRowSamplers) {
  // Three tables of equal bucket count fused into one strided SoA pair,
  // as RrMatrix's dense tiles lay them out: rows[k] picks the table.
  std::vector<AliasSampler> samplers;
  samplers.emplace_back(std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0});
  samplers.emplace_back(std::vector<double>{5.0, 1.0, 1.0, 1.0, 2.0});
  samplers.emplace_back(std::vector<double>{0.1, 0.1, 0.1, 9.0, 0.7});
  std::vector<double> thresholds;
  std::vector<uint32_t> aliases;
  for (const AliasSampler& s : samplers) {
    s.AppendTables(thresholds, aliases);
  }
  const uint64_t bound = samplers[0].size();

  constexpr size_t kCount = 41;  // Deliberately not a multiple of 4.
  std::vector<double> units(kCount);
  std::vector<uint64_t> raws(kCount);
  PhiloxFillElementDraws(/*seed=*/97, /*stream=*/5, /*first=*/7, kCount,
                         units.data(), raws.data());
  std::vector<uint32_t> rows(kCount);
  for (size_t k = 0; k < kCount; ++k) {
    rows[k] = static_cast<uint32_t>(k % samplers.size());
  }

  std::vector<uint32_t> got(kCount, 0xffffffffu);
  AliasLookupBlock(thresholds.data(), aliases.data(), bound,
                   thresholds.size(), rows.data(), units.data(), raws.data(),
                   kCount, got.data());
  for (size_t k = 0; k < kCount; ++k) {
    EXPECT_EQ(got[k], samplers[rows[k]].SampleFrom(units[k], raws[k]))
        << "k=" << k;
  }
}

}  // namespace
}  // namespace mdrr
