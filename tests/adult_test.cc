#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "mdrr/core/dependence.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/stats/frequency.h"

namespace mdrr {
namespace {

TEST(AdultSchemaTest, PaperCardinalities) {
  std::vector<Attribute> schema = AdultSchema();
  ASSERT_EQ(schema.size(), 8u);
  EXPECT_EQ(schema[kAdultWorkclass].cardinality(), 9u);
  EXPECT_EQ(schema[kAdultEducation].cardinality(), 16u);
  EXPECT_EQ(schema[kAdultMaritalStatus].cardinality(), 7u);
  EXPECT_EQ(schema[kAdultOccupation].cardinality(), 15u);
  EXPECT_EQ(schema[kAdultRelationship].cardinality(), 6u);
  EXPECT_EQ(schema[kAdultRace].cardinality(), 5u);
  EXPECT_EQ(schema[kAdultSex].cardinality(), 2u);
  EXPECT_EQ(schema[kAdultIncome].cardinality(), 2u);
}

TEST(AdultSchemaTest, DomainSizeMatchesPaper) {
  // Section 6.2: "there were 1,814,400 possible combinations".
  std::vector<Attribute> schema = AdultSchema();
  uint64_t product = 1;
  for (const Attribute& a : schema) product *= a.cardinality();
  EXPECT_EQ(product, 1814400u);
}

TEST(AdultSchemaTest, MeasurementTypes) {
  std::vector<Attribute> schema = AdultSchema();
  EXPECT_EQ(schema[kAdultEducation].type, AttributeType::kOrdinal);
  EXPECT_EQ(schema[kAdultIncome].type, AttributeType::kOrdinal);
  EXPECT_EQ(schema[kAdultOccupation].type, AttributeType::kNominal);
  EXPECT_EQ(schema[kAdultSex].type, AttributeType::kNominal);
}

TEST(AdultSynthesizerTest, DeterministicInSeed) {
  Dataset a = SynthesizeAdult(500, 42);
  Dataset b = SynthesizeAdult(500, 42);
  Dataset c = SynthesizeAdult(500, 43);
  EXPECT_EQ(a.column(kAdultEducation), b.column(kAdultEducation));
  EXPECT_NE(a.column(kAdultEducation), c.column(kAdultEducation));
}

TEST(AdultSynthesizerTest, DefaultSize) {
  Dataset ds = SynthesizeAdultDefault(1);
  EXPECT_EQ(ds.num_rows(), kAdultNumRecords);
}

class AdultMarginals : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { dataset_ = new Dataset(SynthesizeAdult(20000, 7)); }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* AdultMarginals::dataset_ = nullptr;

TEST_F(AdultMarginals, SexRatioIsCalibrated) {
  stats::FrequencyTable table(dataset_->column(kAdultSex), 2);
  // Real Adult: ~66.9% male.
  EXPECT_NEAR(table.Proportions()[1], 0.669, 0.02);
}

TEST_F(AdultMarginals, IncomeRateIsCalibrated) {
  stats::FrequencyTable table(dataset_->column(kAdultIncome), 2);
  // Real Adult: ~24% above 50K.
  EXPECT_NEAR(table.Proportions()[1], 0.24, 0.05);
}

TEST_F(AdultMarginals, EducationModeIsHsGrad) {
  stats::FrequencyTable table(dataset_->column(kAdultEducation), 16);
  std::vector<double> p = table.Proportions();
  size_t mode = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[mode]) mode = i;
  }
  int hs_grad = AdultSchema()[kAdultEducation].FindCategory("HS-grad");
  EXPECT_EQ(mode, static_cast<size_t>(hs_grad));
}

TEST_F(AdultMarginals, EveryCategoryAppears) {
  // With 20000 records even the rarest categories (Armed-Forces,
  // Never-worked, Preschool) should typically show up; tolerate at most a
  // couple of empty cells overall.
  int empty = 0;
  for (size_t j = 0; j < dataset_->num_attributes(); ++j) {
    stats::FrequencyTable table(dataset_->column(j),
                                dataset_->attribute(j).cardinality());
    for (int64_t c : table.counts()) {
      if (c == 0) ++empty;
    }
  }
  EXPECT_LE(empty, 2);
}

TEST_F(AdultMarginals, DependenceRankingMatchesAdultStructure) {
  // The load-bearing property for the paper's experiments: the
  // Relationship/Sex/Marital family dominates the dependence ranking
  // (in real Adult, Cramér's V(Relationship, Sex) ~ 0.65 tops the list --
  // the 2-category Sex denominator concentrates the statistic), the
  // Education/Occupation coupling is moderate, and Race is nearly
  // independent of everything.
  double marital_rel =
      DependenceBetween(*dataset_, kAdultMaritalStatus, kAdultRelationship);
  double sex_rel = DependenceBetween(*dataset_, kAdultSex, kAdultRelationship);
  double race_edu = DependenceBetween(*dataset_, kAdultRace, kAdultEducation);
  double edu_occ =
      DependenceBetween(*dataset_, kAdultEducation, kAdultOccupation);

  EXPECT_GT(sex_rel, 0.55);
  EXPECT_GT(marital_rel, 0.35);
  EXPECT_GT(edu_occ, 0.12);
  EXPECT_LT(race_edu, 0.1);
  EXPECT_GT(sex_rel, marital_rel);
  EXPECT_GT(marital_rel, edu_occ);
  EXPECT_GT(edu_occ, race_edu);
}

TEST_F(AdultMarginals, HusbandsAreMarriedMales) {
  // Structural sanity of the Bayesian network: Husband implies male and
  // (almost surely) married.
  int husband = AdultSchema()[kAdultRelationship].FindCategory("Husband");
  ASSERT_GE(husband, 0);
  size_t husbands = 0;
  size_t male_husbands = 0;
  for (size_t i = 0; i < dataset_->num_rows(); ++i) {
    if (dataset_->at(i, kAdultRelationship) ==
        static_cast<uint32_t>(husband)) {
      ++husbands;
      if (dataset_->at(i, kAdultSex) == 1) ++male_husbands;
    }
  }
  ASSERT_GT(husbands, 0u);
  EXPECT_EQ(husbands, male_husbands);
}

TEST(AdultCsvTest, LoadsWellFormedFile) {
  std::string path = ::testing::TempDir() + "/mdrr_adult_sample.csv";
  {
    std::ofstream file(path);
    file << "39, State-gov, 77516, Bachelors, 13, Never-married, "
            "Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, "
            "United-States, <=50K\n";
    file << "50, Self-emp-not-inc, 83311, Bachelors, 13, "
            "Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, "
            "0, 13, United-States, >50K.\n";  // Trailing dot: test format.
  }
  auto ds = LoadAdultCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds.value().num_rows(), 2u);
  EXPECT_EQ(ds.value().RowToString(0),
            "State-gov, Bachelors, Never-married, Adm-clerical, "
            "Not-in-family, White, Male, <=50K");
  EXPECT_EQ(ds.value().at(1, kAdultIncome), 1u);
  std::remove(path.c_str());
}

TEST(AdultCsvTest, RejectsWrongColumnCount) {
  std::string path = ::testing::TempDir() + "/mdrr_adult_bad.csv";
  {
    std::ofstream file(path);
    file << "39, State-gov, 77516\n";
  }
  EXPECT_FALSE(LoadAdultCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdrr
