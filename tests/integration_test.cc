// End-to-end integration tests on (synthetic) Adult: the full pipelines of
// the paper run together -- dependence assessment, clustering, cluster-wise
// RR, adjustment, count queries and synthetic release -- with the
// qualitative relationships of Section 6 asserted.

#include <cmath>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/dependence.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

class AdultPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(SynthesizeAdult(12000, 2024));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* AdultPipeline::dataset_ = nullptr;

TEST_F(AdultPipeline, FullRrClustersPipelineIsInternallyConsistent) {
  Rng rng(1);
  RrClustersOptions options;
  options.keep_probability = 0.7;
  options.clustering = ClusteringOptions{50.0, 0.1};
  options.dependence_source = DependenceSource::kOracle;
  auto result = RunRrClusters(*dataset_, options, rng);
  ASSERT_TRUE(result.ok());

  // Every attribute appears in exactly one cluster.
  std::vector<int> seen(dataset_->num_attributes(), 0);
  for (const auto& cluster : result.value().clusters) {
    for (size_t j : cluster) ++seen[j];
  }
  for (int count : seen) EXPECT_EQ(count, 1);

  // Every cluster joint is a proper distribution.
  for (const RrJointResult& joint : result.value().cluster_results) {
    double total = 0.0;
    for (double v : joint.estimated) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }

  // The randomized dataset has valid codes everywhere.
  for (size_t j = 0; j < dataset_->num_attributes(); ++j) {
    for (uint32_t code : result.value().randomized.column(j)) {
      EXPECT_LT(code, dataset_->attribute(j).cardinality());
    }
  }
}

TEST_F(AdultPipeline, ClusterMarginalsAgreeWithIndependentEstimates) {
  // The cluster joint, marginalized to one attribute, should estimate the
  // same marginal RR-Independent estimates (both unbiased for the truth).
  Rng rng(3);
  RrClustersOptions coptions;
  coptions.keep_probability = 0.8;
  coptions.clustering = ClusteringOptions{50.0, 0.1};
  auto clusters = RunRrClusters(*dataset_, coptions, rng);
  ASSERT_TRUE(clusters.ok());

  for (size_t c = 0; c < clusters.value().clusters.size(); ++c) {
    const auto& members = clusters.value().clusters[c];
    const RrJointResult& joint = clusters.value().cluster_results[c];
    for (size_t position = 0; position < members.size(); ++position) {
      std::vector<double> marginal =
          joint.domain.MarginalizeTo(joint.estimated, position);
      std::vector<double> truth = EmpiricalDistribution(
          dataset_->column(members[position]),
          dataset_->attribute(members[position]).cardinality());
      for (size_t v = 0; v < truth.size(); ++v) {
        EXPECT_NEAR(marginal[v], truth[v], 0.06)
            << "cluster " << c << " attribute " << members[position]
            << " value " << v;
      }
    }
  }
}

TEST_F(AdultPipeline, AdjustmentImprovesJointQueriesOnDependentPair) {
  // Section 6.5's qualitative claim: at high p and small coverage,
  // adjustment improves RR-Independent on dependent attribute pairs.
  // Evaluate a fixed query on Marital x Relationship.
  eval::ExperimentConfig base;
  base.keep_probability = 0.7;
  base.sigma = 0.1;
  base.runs = 24;
  base.seed = 5;
  base.clustering = ClusteringOptions{50.0, 0.1};

  base.method = eval::Method::kRrIndependent;
  auto independent = RunCountQueryExperiment(*dataset_, base);
  ASSERT_TRUE(independent.ok());

  base.method = eval::Method::kRrClusters;
  auto clusters = RunCountQueryExperiment(*dataset_, base);
  ASSERT_TRUE(clusters.ok());

  // RR-Clusters should not be worse than twice RR-Independent and is
  // expected to win at p=0.7 / sigma=0.1 (Figure 3 bottom panels).
  EXPECT_LT(clusters.value().median_relative_error,
            independent.value().median_relative_error * 1.5);
}

TEST_F(AdultPipeline, SyntheticReleasePreservesDependence) {
  Rng rng(7);
  RrClustersOptions options;
  options.keep_probability = 0.8;
  options.clustering = ClusteringOptions{50.0, 0.1};
  auto result = RunRrClusters(*dataset_, options, rng);
  ASSERT_TRUE(result.ok());

  Rng synth_rng(11);
  auto synthetic = SynthesizeFromClusters(*result, 12000, synth_rng);
  ASSERT_TRUE(synthetic.ok());

  // Relationship and Sex share a cluster under Tv=50, so their dependence
  // must survive the randomize -> estimate -> synthesize round trip.
  // Marital-status lands in a different cluster (7*6*2 = 84 > Tv), so its
  // dependence on Relationship is forced towards 0 by construction --
  // exactly the independence assumption RR-Clusters trades away.
  double true_in_cluster =
      DependenceBetween(*dataset_, kAdultRelationship, kAdultSex);
  double synth_in_cluster =
      DependenceBetween(synthetic.value(), kAdultRelationship, kAdultSex);
  EXPECT_GT(synth_in_cluster, 0.5 * true_in_cluster);

  double synth_cross = DependenceBetween(
      synthetic.value(), kAdultMaritalStatus, kAdultRelationship);
  EXPECT_LT(synth_cross, 0.1);
}

TEST_F(AdultPipeline, Adult6TilingMatchesPaperConstruction) {
  Dataset adult6 = dataset_->Tiled(6);
  EXPECT_EQ(adult6.num_rows(), dataset_->num_rows() * 6);
  // Identical empirical distribution per attribute.
  for (size_t j = 0; j < dataset_->num_attributes(); ++j) {
    std::vector<double> original = EmpiricalDistribution(
        dataset_->column(j), dataset_->attribute(j).cardinality());
    std::vector<double> tiled = EmpiricalDistribution(
        adult6.column(j), adult6.attribute(j).cardinality());
    for (size_t v = 0; v < original.size(); ++v) {
      EXPECT_NEAR(tiled[v], original[v], 1e-12);
    }
  }
}

TEST_F(AdultPipeline, LargerDatasetReducesClusterError) {
  // Table 2 vs Table 1: Adult6 yields lower relative error than Adult for
  // the same parameterization (p = 0.5, Tv = 50, Td = 0.1). The query is
  // fixed to an in-cluster pair (Relationship, Sex) because in-cluster
  // error is sampling noise -- which shrinks with n -- while cross-cluster
  // error is an independence bias that does not.
  eval::ExperimentConfig config;
  config.method = eval::Method::kRrClusters;
  config.keep_probability = 0.5;
  config.clustering = ClusteringOptions{50.0, 0.1};
  config.sigma = 0.1;
  config.runs = 24;
  config.seed = 13;
  config.fixed_query_attributes = {kAdultRelationship, kAdultSex};

  auto small = RunCountQueryExperiment(*dataset_, config);
  ASSERT_TRUE(small.ok());
  Dataset adult6 = dataset_->Tiled(6);
  auto large = RunCountQueryExperiment(adult6, config);
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large.value().median_relative_error,
            small.value().median_relative_error);
}

TEST_F(AdultPipeline, EquivalentRiskCalibrationAcrossProtocols) {
  // Section 6.3: RR-Clusters at budget sum-of-eps has the same total
  // epsilon as RR-Independent at the same p.
  Rng rng(17);
  auto independent =
      RunRrIndependent(*dataset_, RrIndependentOptions{0.5}, rng);
  ASSERT_TRUE(independent.ok());

  Rng rng2(19);
  RrClustersOptions coptions;
  coptions.keep_probability = 0.5;
  coptions.clustering = ClusteringOptions{50.0, 0.1};
  auto clusters = RunRrClusters(*dataset_, coptions, rng2);
  ASSERT_TRUE(clusters.ok());

  EXPECT_NEAR(clusters.value().release_epsilon,
              independent.value().total_epsilon, 1e-6);
}

}  // namespace
}  // namespace mdrr
