#include "mdrr/core/batch_engine.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/attribute.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr {
namespace {

BatchPerturbationEngine MakeEngine(size_t num_threads, size_t shard_size,
                                   uint64_t seed = 42) {
  BatchPerturbationOptions options;
  options.seed = seed;
  options.num_threads = num_threads;
  options.shard_size = shard_size;
  return BatchPerturbationEngine(options);
}

Dataset SmallData(size_t n = 2000) { return SynthesizeAdult(n, 2020); }

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    EXPECT_EQ(a.column(j), b.column(j)) << "column " << j;
  }
}

TEST(BatchEngineTest, IndependentIsBitIdenticalAcrossThreadCounts) {
  Dataset data = SmallData();
  RrIndependentOptions options{0.7};
  auto baseline = MakeEngine(1, 256).RunIndependent(data, options);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 3u, 8u}) {
    auto run = MakeEngine(threads, 256).RunIndependent(data, options);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    ExpectSameDataset(baseline.value().randomized, run.value().randomized);
    EXPECT_EQ(baseline.value().lambda, run.value().lambda);
    EXPECT_EQ(baseline.value().estimated, run.value().estimated);
    EXPECT_EQ(baseline.value().total_epsilon, run.value().total_epsilon);
  }
}

TEST(BatchEngineTest, JointIsBitIdenticalAcrossThreadCounts) {
  Dataset data = SmallData();
  std::vector<size_t> attributes = {1, 3};
  auto baseline = MakeEngine(1, 128).RunJoint(data, attributes, 4.0);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 5u}) {
    auto run = MakeEngine(threads, 128).RunJoint(data, attributes, 4.0);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(baseline.value().randomized_codes,
              run.value().randomized_codes);
    EXPECT_EQ(baseline.value().estimated, run.value().estimated);
  }
}

TEST(BatchEngineTest, ClustersIsBitIdenticalAcrossThreadCounts) {
  Dataset data = SmallData();
  RrClustersOptions options;
  options.keep_probability = 0.7;
  // In-protocol dependence assessment exercises the serial stream too.
  options.dependence_source = DependenceSource::kRandomizedResponse;
  auto baseline = MakeEngine(1, 200).RunClusters(data, options);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {2u, 7u}) {
    auto run = MakeEngine(threads, 200).RunClusters(data, options);
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(baseline.value().clusters, run.value().clusters);
    ExpectSameDataset(baseline.value().randomized, run.value().randomized);
    EXPECT_EQ(baseline.value().release_epsilon, run.value().release_epsilon);
    EXPECT_EQ(baseline.value().dependence_epsilon,
              run.value().dependence_epsilon);
    ASSERT_EQ(baseline.value().cluster_results.size(),
              run.value().cluster_results.size());
    for (size_t c = 0; c < baseline.value().cluster_results.size(); ++c) {
      EXPECT_EQ(baseline.value().cluster_results[c].estimated,
                run.value().cluster_results[c].estimated);
    }
  }
}

TEST(BatchEngineTest, EmptyDatasetFails) {
  Dataset empty(std::vector<Attribute>{
      Attribute{"a", AttributeType::kNominal, {"0", "1"}}});
  BatchPerturbationEngine engine = MakeEngine(4, 64);
  EXPECT_FALSE(engine.RunIndependent(empty, RrIndependentOptions{0.7}).ok());
  EXPECT_FALSE(engine.RunJoint(empty, {0}, 1.0).ok());
  EXPECT_FALSE(engine.RunClusters(empty, RrClustersOptions{}).ok());
}

TEST(BatchEngineTest, ShardCountExceedingRecordCountWorks) {
  Dataset data = SmallData(7);
  // shard_size 1 => 7 shards; more threads than shards and more shards
  // than any thread will claim.
  auto tiny_shards = MakeEngine(16, 1).RunIndependent(data, {0.7});
  ASSERT_TRUE(tiny_shards.ok());
  auto same = MakeEngine(1, 1).RunIndependent(data, {0.7});
  ASSERT_TRUE(same.ok());
  ExpectSameDataset(tiny_shards.value().randomized, same.value().randomized);
}

TEST(BatchEngineTest, SingleShardWhenShardSizeExceedsRecords) {
  Dataset data = SmallData(100);
  BatchPerturbationEngine engine = MakeEngine(4, 1 << 20);
  EXPECT_EQ(engine.NumShards(data.num_rows()), 1u);
  EXPECT_TRUE(engine.RunIndependent(data, {0.7}).ok());
}

TEST(BatchEngineTest, ZeroShardSizeIsClampedToOne) {
  BatchPerturbationEngine engine = MakeEngine(2, 0);
  EXPECT_EQ(engine.options().shard_size, 1u);
  EXPECT_EQ(engine.NumShards(5), 5u);
}

TEST(BatchEngineTest, HardwareThreadCountRuns) {
  Dataset data = SmallData(500);
  auto run = MakeEngine(0, 64).RunIndependent(data, {0.7});
  ASSERT_TRUE(run.ok());
  auto baseline = MakeEngine(1, 64).RunIndependent(data, {0.7});
  ASSERT_TRUE(baseline.ok());
  ExpectSameDataset(run.value().randomized, baseline.value().randomized);
}

TEST(BatchEngineTest, LambdaMatchesRandomizedColumnScan) {
  Dataset data = SmallData(1234);
  auto run = MakeEngine(3, 100).RunIndependent(data, {0.6});
  ASSERT_TRUE(run.ok());
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    std::vector<double> rescanned =
        EmpiricalDistribution(run.value().randomized.column(j),
                              data.attribute(j).cardinality());
    ASSERT_EQ(run.value().lambda[j].size(), rescanned.size());
    for (size_t v = 0; v < rescanned.size(); ++v) {
      // The engine divides counts by n; EmpiricalDistribution multiplies
      // by 1/n -- equal up to rounding, not bitwise.
      EXPECT_DOUBLE_EQ(run.value().lambda[j][v], rescanned[v])
          << "attribute " << j << " category " << v;
    }
  }
}

TEST(BatchEngineTest, DifferentSeedsGiveDifferentReleases) {
  Dataset data = SmallData(500);
  auto a = MakeEngine(2, 64, 1).RunIndependent(data, {0.7});
  auto b = MakeEngine(2, 64, 2).RunIndependent(data, {0.7});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = false;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    if (a.value().randomized.column(j) != b.value().randomized.column(j)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(BatchEngineTest, MatchesSequentialMatrixDesign) {
  // Same matrices as the sequential protocol => identical epsilons.
  Dataset data = SmallData(300);
  Rng rng(9);
  auto sequential = RunRrIndependent(data, {0.7}, rng);
  ASSERT_TRUE(sequential.ok());
  auto batched = MakeEngine(2, 64).RunIndependent(data, {0.7});
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(sequential.value().epsilons, batched.value().epsilons);
  EXPECT_EQ(sequential.value().total_epsilon,
            batched.value().total_epsilon);
}

}  // namespace
}  // namespace mdrr
