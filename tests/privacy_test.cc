#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"

namespace mdrr {
namespace {

TEST(KeepUniformEpsilonTest, ClosedForm) {
  // diag/off = (p + (1-p)/r) / ((1-p)/r) = 1 + p r / (1 - p).
  for (size_t r : {2u, 9u, 16u}) {
    for (double p : {0.1, 0.3, 0.5, 0.7}) {
      double expected = std::log(1.0 + p * static_cast<double>(r) / (1.0 - p));
      EXPECT_NEAR(KeepUniformEpsilon(r, p), expected, 1e-12);
    }
  }
}

TEST(KeepUniformEpsilonTest, ExtremesAndMonotonicity) {
  EXPECT_DOUBLE_EQ(KeepUniformEpsilon(5, 0.0), 0.0);  // Pure noise.
  EXPECT_TRUE(std::isinf(KeepUniformEpsilon(5, 1.0)));
  // More keep probability -> less privacy (bigger eps).
  EXPECT_LT(KeepUniformEpsilon(9, 0.1), KeepUniformEpsilon(9, 0.7));
  // Bigger domain -> bigger eps at fixed p.
  EXPECT_LT(KeepUniformEpsilon(2, 0.5), KeepUniformEpsilon(16, 0.5));
}

TEST(PaperKeepUniformEpsilonTest, ApproximatesExactForLargeP) {
  // The printed formula drops the (1-p)/r term from the diagonal; the gap
  // shrinks as p grows.
  double exact = KeepUniformEpsilon(16, 0.7);
  double paper = PaperKeepUniformEpsilon(16, 0.7);
  EXPECT_NEAR(paper, exact, 0.05);
  EXPECT_LT(paper, exact);  // Approximation is from below.
}

TEST(PaperKeepUniformEpsilonTest, AbsoluteValueKicksInForSmallP) {
  // For small p the ratio p|A|/(1-p) can be < 1; the paper takes |ln(.)|.
  double eps = PaperKeepUniformEpsilon(2, 0.1);
  EXPECT_GT(eps, 0.0);
  EXPECT_NEAR(eps, std::fabs(std::log(0.1 * 2 / 0.9)), 1e-12);
}

TEST(SequentialCompositionTest, Sums) {
  EXPECT_DOUBLE_EQ(SequentialComposition({0.5, 1.0, 0.25}), 1.75);
  EXPECT_DOUBLE_EQ(SequentialComposition({}), 0.0);
}

TEST(PrivacyAccountantTest, SequentialSpending) {
  PrivacyAccountant accountant;
  accountant.Spend("attribute A", 0.5);
  accountant.Spend("attribute B", 1.5);
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(), 2.0);
  EXPECT_EQ(accountant.releases().size(), 2u);
}

TEST(PrivacyAccountantTest, ParallelPoolCountsOnce) {
  // Section 4.3: unlinkable pairwise releases compose in parallel.
  PrivacyAccountant accountant;
  accountant.SpendParallel("pair (A,B)", 0.8);
  accountant.SpendParallel("pair (A,C)", 1.2);
  accountant.SpendParallel("pair (B,C)", 0.9);
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(), 1.2);  // Max, not sum.

  accountant.Spend("final RR release", 2.0);
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(), 3.2);
}

TEST(PrivacyAccountantTest, EmptyLedgerIsZero) {
  PrivacyAccountant accountant;
  EXPECT_DOUBLE_EQ(accountant.TotalEpsilon(), 0.0);
}

TEST(PrivacyAccountantTest, ReportMentionsAllReleases) {
  PrivacyAccountant accountant;
  accountant.Spend("round one", 0.25);
  accountant.SpendParallel("round two", 0.75);
  std::string report = accountant.Report();
  EXPECT_NE(report.find("round one"), std::string::npos);
  EXPECT_NE(report.find("round two"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(PrivacyIntegrationTest, MatrixEpsilonConsistentWithAccounting) {
  // An end-to-end sanity check of the Section 6.3 calibration story: the
  // cluster matrix at budget eps_A + eps_B has exactly that epsilon.
  const size_t ra = 9;
  const size_t rb = 2;
  const double p = 0.5;
  double eps_a = KeepUniformEpsilon(ra, p);
  double eps_b = KeepUniformEpsilon(rb, p);
  RrMatrix cluster = RrMatrix::OptimalForEpsilon(ra * rb, eps_a + eps_b);
  EXPECT_NEAR(cluster.Epsilon(), eps_a + eps_b, 1e-9);
}

}  // namespace
}  // namespace mdrr
