// Edge-case and failure-injection coverage across the whole stack:
// single-category attributes, degenerate distributions, singular
// matrices, empty subsets, and protocol property sweeps (TEST_P over the
// randomization strength).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

// --- Single-category attributes ---

TEST(EdgeCaseTest, SingleCategoryAttributeSurvivesProtocols) {
  std::vector<Attribute> schema = {
      Attribute{"constant", AttributeType::kNominal, {"only"}},
      Attribute{"binary", AttributeType::kNominal, {"0", "1"}},
  };
  Dataset ds(schema, {{0, 0, 0, 0}, {0, 1, 0, 1}});
  Rng rng(1);
  auto result = RunRrIndependent(ds, RrIndependentOptions{0.5}, rng);
  ASSERT_TRUE(result.ok());
  // The constant attribute's estimate is the point mass.
  EXPECT_DOUBLE_EQ(result.value().estimated[0][0], 1.0);
  // Its epsilon is 0: nothing is revealed by a constant.
  EXPECT_DOUBLE_EQ(result.value().epsilons[0], 0.0);
}

TEST(EdgeCaseTest, SingleCategoryKeepUniformMatrix) {
  RrMatrix m = RrMatrix::KeepUniform(1, 0.3);
  EXPECT_DOUBLE_EQ(m.Prob(0, 0), 1.0);
  Rng rng(2);
  EXPECT_EQ(m.Randomize(0, rng), 0u);
}

TEST(EdgeCaseTest, ClusteringWithSingleAttribute) {
  linalg::Matrix deps(1, 1, 1.0);
  auto clusters =
      ClusterAttributes(std::vector<int64_t>{5}, deps,
                        ClusteringOptions{10.0, 0.1});
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters.value().size(), 1u);
  EXPECT_EQ(clusters.value()[0], (std::vector<size_t>{0}));
}

// --- Degenerate distributions ---

TEST(EdgeCaseTest, PointMassSurvivesEstimation) {
  RrMatrix m = RrMatrix::KeepUniform(4, 0.6);
  Rng rng(3);
  std::vector<uint32_t> truth(20000, 2);  // All records in category 2.
  std::vector<uint32_t> randomized = m.RandomizeColumn(truth, rng);
  std::vector<double> lambda = EmpiricalDistribution(randomized, 4);
  auto estimate = EstimateProjectedDistribution(m, lambda);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate.value()[2], 0.95);
}

TEST(EdgeCaseTest, SingleRecordDataset) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}}};
  Dataset ds(schema, {{1}});
  Rng rng(5);
  auto result = RunRrIndependent(ds, RrIndependentOptions{0.7}, rng);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (double v : result.value().estimated[0]) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// --- Adjustment degeneracies ---

TEST(EdgeCaseTest, AdjustmentWithPointMassTarget) {
  std::vector<AdjustmentGroup> groups(1);
  groups[0].codes = {0, 1, 0, 1};
  groups[0].target = {1.0, 0.0};  // All mass on category 0.
  auto result = RunRrAdjustment(groups, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().weights[0], 0.5, 1e-12);
  EXPECT_NEAR(result.value().weights[1], 0.0, 1e-12);
}

TEST(EdgeCaseTest, AdjustmentSingleRecord) {
  std::vector<AdjustmentGroup> groups(1);
  groups[0].codes = {1};
  groups[0].target = {0.3, 0.7};
  auto result = RunRrAdjustment(groups, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().weights[0], 1.0, 1e-12);
  // Target mass 0.3 on category 0 is unreachable.
  EXPECT_FALSE(result.value().converged);
}

// --- RR-Joint corner cases ---

TEST(EdgeCaseTest, RrJointSingleAttributeEqualsMarginalEstimation) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}}};
  Rng data_rng(7);
  std::vector<uint32_t> col(30000);
  for (auto& v : col) v = static_cast<uint32_t>(data_rng.Discrete({0.6, 0.3, 0.1}));
  Dataset ds(schema, {col});
  Rng rng(11);
  auto joint = RunRrJoint(ds, {0}, 2.0, rng);
  ASSERT_TRUE(joint.ok());
  std::vector<double> truth = EmpiricalDistribution(col, 3);
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(joint.value().estimated[v], truth[v], 0.03);
  }
}

TEST(EdgeCaseTest, RrJointZeroEpsilonIsUseless) {
  // eps = 0 -> uniform matrix -> SolveTranspose must fail (singular).
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1"}}};
  Dataset ds(schema, {{0, 1, 0, 1}});
  Rng rng(13);
  auto joint = RunRrJoint(ds, {0}, 0.0, rng);
  EXPECT_FALSE(joint.ok());
}

// --- Property sweep: end-to-end marginal recovery across p ---

class ProtocolRecoverySweep : public ::testing::TestWithParam<double> {};

TEST_P(ProtocolRecoverySweep, MarginalsRecoveredAtEveryKeepProbability) {
  const double p = GetParam();
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2", "3"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1"}},
  };
  Rng data_rng(17);
  std::vector<std::vector<uint32_t>> cols(2);
  const size_t n = 150000;
  for (size_t i = 0; i < n; ++i) {
    cols[0].push_back(
        static_cast<uint32_t>(data_rng.Discrete({0.4, 0.3, 0.2, 0.1})));
    cols[1].push_back(static_cast<uint32_t>(data_rng.Discrete({0.7, 0.3})));
  }
  Dataset ds(schema, std::move(cols));
  Rng rng(static_cast<uint64_t>(p * 1000));
  auto result = RunRrIndependent(ds, RrIndependentOptions{p}, rng);
  ASSERT_TRUE(result.ok());

  // Estimation noise grows as p shrinks; scale the tolerance accordingly
  // (the 1/(p) amplification of Section 2.3).
  double tolerance = 0.012 / std::max(0.05, p);
  std::vector<double> truth_a = EmpiricalDistribution(ds.column(0), 4);
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(result.value().estimated[0][v], truth_a[v], tolerance)
        << "p=" << p << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(KeepProbabilities, ProtocolRecoverySweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.7, 0.9,
                                           0.99));

// --- Property sweep: clustering is a partition for any thresholds ---

class ClusteringPartitionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClusteringPartitionSweep, AlwaysPartitionAndWithinTv) {
  auto [tv, td] = GetParam();
  const size_t m = 6;
  std::vector<int64_t> cards = {2, 3, 4, 5, 6, 7};
  Rng rng(23);
  linalg::Matrix deps(m, m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    deps(i, i) = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      double d = rng.UniformDouble();
      deps(i, j) = d;
      deps(j, i) = d;
    }
  }
  auto clusters = ClusterAttributes(cards, deps, ClusteringOptions{tv, td});
  ASSERT_TRUE(clusters.ok());
  std::vector<int> seen(m, 0);
  for (const auto& cluster : clusters.value()) {
    EXPECT_FALSE(cluster.empty());
    // Multi-attribute clusters must respect Tv (singletons are exempt by
    // Algorithm 1's initialization).
    if (cluster.size() > 1) {
      EXPECT_LE(ClusterCombinations(cards, cluster), tv);
    }
    for (size_t j : cluster) ++seen[j];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ClusteringPartitionSweep,
    ::testing::Combine(::testing::Values(4.0, 20.0, 100.0, 1e6),
                       ::testing::Values(0.0, 0.2, 0.5, 0.9)));

// --- Determinism of the full cluster protocol ---

TEST(EdgeCaseTest, RrClustersDeterministicForSeed) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kNominal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"0", "1"}},
  };
  Rng data_rng(29);
  std::vector<std::vector<uint32_t>> cols(2);
  for (int i = 0; i < 2000; ++i) {
    uint32_t a = static_cast<uint32_t>(data_rng.UniformInt(3));
    cols[0].push_back(a);
    cols[1].push_back(a % 2);
  }
  Dataset ds(schema, std::move(cols));
  RrClustersOptions options;
  options.clustering = ClusteringOptions{10.0, 0.1};

  Rng rng_a(31);
  Rng rng_b(31);
  auto a = RunRrClusters(ds, options, rng_a);
  auto b = RunRrClusters(ds, options, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().clusters, b.value().clusters);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(a.value().randomized.column(j), b.value().randomized.column(j));
  }
}

// --- Domain boundary conditions ---

TEST(EdgeCaseTest, DomainOfOnes) {
  Domain d({1, 1, 1});
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.Encode({0, 0, 0}), 0u);
  EXPECT_EQ(d.Decode(0), (std::vector<uint32_t>{0, 0, 0}));
}

TEST(EdgeCaseTest, LargeSingleAttributeDomain) {
  Domain d({1000000});
  EXPECT_EQ(d.size(), 1000000u);
  EXPECT_EQ(d.Encode({999999}), 999999u);
}

}  // namespace
}  // namespace mdrr
