// Integration suite for the always-on streaming collector: windowed
// releases, ingest-thread determinism, budget fail-closed degradation,
// snapshot/resume equivalence, and the zero-LU structured fast path.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/release/streaming.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

namespace release = mdrr::release;
namespace protocol = mdrr::protocol;

// A small three-attribute survey population, deterministic in `seed`.
Dataset MakeSurvey(size_t rows, uint64_t seed) {
  std::vector<Attribute> schema(3);
  schema[0].name = "a";
  schema[0].categories = {"a0", "a1", "a2"};
  schema[1].name = "b";
  schema[1].categories = {"b0", "b1"};
  schema[2].name = "c";
  schema[2].categories = {"c0", "c1", "c2", "c3"};
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> columns(3);
  for (size_t row = 0; row < rows; ++row) {
    columns[0].push_back(static_cast<uint32_t>(rng.UniformInt(3)));
    columns[1].push_back(static_cast<uint32_t>(rng.Bernoulli(0.3) ? 1 : 0));
    columns[2].push_back(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  return Dataset(std::move(schema), std::move(columns));
}

release::ReleaseSpec StreamingSpec(uint64_t window_size) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kIndependent;
  spec.budget.keep_probability = 0.6;
  spec.streaming.enabled = true;
  spec.streaming.window_size = window_size;
  spec.execution.seed = 21;
  return spec;
}

protocol::StreamingReplayResult MustReplay(
    const release::ReleaseSpec& spec, const Dataset& data,
    const protocol::StreamingReplayOptions& options) {
  auto result = protocol::RunStreamingReplay(spec, data, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ---------------------------------------------------------------------------
// Spec surface.
// ---------------------------------------------------------------------------

TEST(StreamingSpecTest, StreamingFieldsRoundTripThroughText) {
  release::ReleaseSpec spec = StreamingSpec(500);
  spec.streaming.window_kind = release::WindowKind::kSliding;
  spec.streaming.window_stride = 250;
  spec.streaming.window_epsilon = 4.5;
  spec.streaming.max_windows = 7;
  auto parsed = release::ParseReleaseSpec(release::PrintReleaseSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
}

TEST(StreamingSpecTest, GeometricOrdinalRoundTripsAndValidates) {
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kGeometricOrdinal;
  spec.mechanism.geometric_epsilon = 2.5;
  auto parsed = release::ParseReleaseSpec(release::PrintReleaseSpec(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spec);
  EXPECT_TRUE(release::ValidateReleaseSpec(spec, 3).ok());

  spec.mechanism.geometric_epsilon = 0.0;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());
}

TEST(StreamingSpecTest, ValidationRejectsContradictions) {
  // Enabled but no window size.
  release::ReleaseSpec spec = StreamingSpec(0);
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());

  // Sliding stride must divide the size.
  spec = StreamingSpec(500);
  spec.streaming.window_kind = release::WindowKind::kSliding;
  spec.streaming.window_stride = 300;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());

  // Tumbling stride, when given, must equal the size.
  spec = StreamingSpec(500);
  spec.streaming.window_stride = 250;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());

  // Streaming re-estimates marginals only; batch-only stages refuse.
  spec = StreamingSpec(500);
  spec.adjustment.enabled = true;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());
  spec = StreamingSpec(500);
  spec.synthetic.enabled = true;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());
  spec = StreamingSpec(500);
  spec.mechanism.kind = release::MechanismKind::kClusters;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());

  // Streaming knobs without streaming.enabled are a typo, not a default.
  spec = release::ReleaseSpec{};
  spec.streaming.window_size = 500;
  EXPECT_FALSE(release::ValidateReleaseSpec(spec, 3).ok());
}

TEST(StreamingSpecTest, BatchPlannerRefusesStreamingSpecs) {
  release::ReleaseSpec spec = StreamingSpec(500);
  spec.dataset.source = release::DatasetSpec::Source::kSyntheticAdult;
  spec.dataset.synthetic_records = 100;
  auto plan = release::ReleasePlanner::Plan(spec);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingSpecTest, GeometricOrdinalRunsAsBatchMechanism) {
  Dataset data = MakeSurvey(400, 3);
  release::ReleaseSpec spec;
  spec.mechanism.kind = release::MechanismKind::kGeometricOrdinal;
  spec.mechanism.geometric_epsilon = 1.5;
  spec.execution.seed = 5;
  auto plan = release::ReleasePlanner::Plan(spec, &data);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto artifacts = plan.value().Run();
  ASSERT_TRUE(artifacts.ok()) << artifacts.status().ToString();
  // Expression (4) epsilon of GeometricOrdinal is exactly the declared
  // epsilon, per attribute, composed over the three attributes.
  EXPECT_NEAR(artifacts.value().release_epsilon, 3 * 1.5, 1e-9);
  ASSERT_EQ(artifacts.value().marginal_estimates.size(), 3u);
}

// ---------------------------------------------------------------------------
// Windowed releases.
// ---------------------------------------------------------------------------

TEST(StreamingReleaseTest, TumblingWindowsMatchNaiveRecount) {
  Dataset data = MakeSurvey(700, 11);
  release::ReleaseSpec spec = StreamingSpec(500);
  protocol::StreamingReplayOptions options;
  options.total_reports = 2000;
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);

  ASSERT_EQ(result.windows.size(), 4u);
  EXPECT_TRUE(result.finished);

  // Recount every window from scratch: regenerate the perturbed report
  // of each sequence (row s % rows, randomness keyed off s), tally, and
  // run the same Eq. (2) closed form. Bit-identical, not approximate.
  RrIndependentOptions design;
  design.keep_probability = spec.budget.keep_probability;
  std::vector<RrMatrix> matrices;
  for (size_t j = 0; j < data.num_attributes(); ++j) {
    matrices.push_back(
        MakeIndependentMatrix(data.attribute(j).cardinality(), design));
  }
  RngStreamFamily family(spec.execution.seed);
  for (const release::StreamWindow& window : result.windows) {
    EXPECT_TRUE(window.released);
    EXPECT_EQ(window.end_sequence - window.begin_sequence, 500u);
    EXPECT_EQ(window.num_reports, 500u);
    std::vector<std::vector<uint64_t>> tallies;
    for (size_t j = 0; j < matrices.size(); ++j) {
      tallies.emplace_back(data.attribute(j).cardinality(), 0);
    }
    for (uint64_t s = window.begin_sequence; s < window.end_sequence; ++s) {
      Rng rng = family.Stream(s);
      const size_t row = static_cast<size_t>(s % data.num_rows());
      for (size_t j = 0; j < matrices.size(); ++j) {
        ++tallies[j][matrices[j].Randomize(data.at(row, j), rng)];
      }
    }
    for (size_t j = 0; j < matrices.size(); ++j) {
      std::vector<double> lambda(tallies[j].size());
      for (size_t v = 0; v < lambda.size(); ++v) {
        lambda[v] = static_cast<double>(tallies[j][v]) /
                    static_cast<double>(window.num_reports);
      }
      auto expected =
          EstimateProjectedDistribution(matrices[j], lambda);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(window.artifacts.marginal_estimates[j], expected.value());
    }
  }
}

TEST(StreamingReleaseTest, SlidingWindowsOverlapByStride) {
  Dataset data = MakeSurvey(300, 17);
  release::ReleaseSpec spec = StreamingSpec(400);
  spec.streaming.window_kind = release::WindowKind::kSliding;
  spec.streaming.window_stride = 200;
  protocol::StreamingReplayOptions options;
  options.total_reports = 1200;
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);

  // (1200 - 400) / 200 + 1 = 5 windows, each shifted by one stride.
  ASSERT_EQ(result.windows.size(), 5u);
  EXPECT_TRUE(result.finished);
  for (size_t w = 0; w < result.windows.size(); ++w) {
    EXPECT_EQ(result.windows[w].begin_sequence, w * 200);
    EXPECT_EQ(result.windows[w].end_sequence, w * 200 + 400);
    EXPECT_EQ(result.windows[w].num_reports, 400u);
    EXPECT_TRUE(result.windows[w].released);
  }
}

TEST(StreamingReleaseTest, TrailingPartialWindowNeverReleases) {
  Dataset data = MakeSurvey(300, 19);
  release::ReleaseSpec spec = StreamingSpec(500);
  protocol::StreamingReplayOptions options;
  options.total_reports = 1700;  // 3 full windows + 200 leftover reports.
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);
  ASSERT_EQ(result.windows.size(), 3u);
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.windows.back().end_sequence, 1500u);
}

TEST(StreamingReleaseTest, MaxWindowsCapsEmissionWhileCountingContinues) {
  Dataset data = MakeSurvey(300, 23);
  release::ReleaseSpec spec = StreamingSpec(400);
  spec.streaming.max_windows = 2;
  protocol::StreamingReplayOptions options;
  options.total_reports = 2000;
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);
  ASSERT_EQ(result.windows.size(), 2u);
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.reports_ingested, 2000u);
}

// The acceptance gate: the per-window transcript is a pure function of
// the spec and the arrival schedule -- never of the ingest thread count
// or shard count.
TEST(StreamingReleaseTest, TranscriptBitIdenticalAcrossIngestThreads) {
  Dataset data = MakeSurvey(600, 29);
  release::ReleaseSpec spec = StreamingSpec(300);
  spec.streaming.window_kind = release::WindowKind::kSliding;
  spec.streaming.window_stride = 150;

  std::string reference;
  for (size_t threads : {1, 2, 4, 8}) {
    protocol::StreamingReplayOptions options;
    options.total_reports = 2400;
    options.num_ingest_threads = threads;
    options.collector.num_shards = threads >= 4 ? 4 : threads;
    options.collector.channel_capacity = 64;  // Force backpressure.
    protocol::StreamingReplayResult result = MustReplay(spec, data, options);
    std::string transcript = release::PrintStreamWindows(result.windows);
    EXPECT_FALSE(transcript.empty());
    if (reference.empty()) {
      reference = transcript;
    } else {
      EXPECT_EQ(transcript, reference) << "diverged at " << threads
                                       << " ingest threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Budget.
// ---------------------------------------------------------------------------

TEST(StreamingReleaseTest, BudgetExhaustionSuppressesButKeepsCounting) {
  Dataset data = MakeSurvey(500, 31);
  release::ReleaseSpec spec = StreamingSpec(400);

  // Find the per-window charge, then afford exactly two windows.
  auto probe = release::StreamingCollector::Create(
      spec, {3, 2, 4}, release::StreamingCollectorOptions{});
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const double per_window = probe.value()->window_epsilon();
  ASSERT_GT(per_window, 0.0);
  spec.budget.max_total_epsilon = 2.5 * per_window;

  protocol::StreamingReplayOptions options;
  options.total_reports = 2000;  // 5 windows.
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);

  ASSERT_EQ(result.windows.size(), 5u);
  for (size_t w = 0; w < result.windows.size(); ++w) {
    const release::StreamWindow& window = result.windows[w];
    EXPECT_EQ(window.released, w < 2) << "window " << w;
    // Suppressed windows still counted their reports; they publish
    // nothing.
    EXPECT_EQ(window.num_reports, 400u);
    if (!window.released) {
      EXPECT_EQ(window.epsilon, 0.0);
      EXPECT_TRUE(window.artifacts.marginal_estimates.empty());
    }
  }
  // The ledger never exceeds the cap.
  EXPECT_LE(result.epsilon_spent, spec.budget.max_total_epsilon);
  EXPECT_DOUBLE_EQ(result.epsilon_spent, 2 * per_window);
}

TEST(StreamingReleaseTest, DeclaredWindowEpsilonMustCoverTheDesign) {
  release::ReleaseSpec spec = StreamingSpec(400);
  auto probe = release::StreamingCollector::Create(
      spec, {3, 2, 4}, release::StreamingCollectorOptions{});
  ASSERT_TRUE(probe.ok());
  const double derived = probe.value()->window_epsilon();

  // Understating the design is a contract violation, fail-closed.
  spec.streaming.window_epsilon = derived * 0.5;
  auto under = release::StreamingCollector::Create(
      spec, {3, 2, 4}, release::StreamingCollectorOptions{});
  ASSERT_FALSE(under.ok());
  EXPECT_EQ(under.status().code(), StatusCode::kFailedPrecondition);

  // Overstating (a deliberate safety margin) is honored as the charge.
  spec.streaming.window_epsilon = derived * 2;
  auto over = release::StreamingCollector::Create(
      spec, {3, 2, 4}, release::StreamingCollectorOptions{});
  ASSERT_TRUE(over.ok());
  EXPECT_DOUBLE_EQ(over.value()->window_epsilon(), derived * 2);
}

// ---------------------------------------------------------------------------
// Zero-LU structured fast path.
// ---------------------------------------------------------------------------

TEST(StreamingReleaseTest, StructuredWindowsPerformZeroLuFactorizations) {
  Dataset data = MakeSurvey(500, 37);
  release::ReleaseSpec spec = StreamingSpec(250);
  protocol::StreamingReplayOptions options;
  options.total_reports = 1500;
  const uint64_t lu_before = linalg::LuFactorizationCount();
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);
  EXPECT_EQ(linalg::LuFactorizationCount(), lu_before);
  EXPECT_EQ(result.windows.size(), 6u);
}

TEST(StreamingReleaseTest, GeometricOrdinalStreamsWithDeclaredEpsilon) {
  Dataset data = MakeSurvey(400, 41);
  release::ReleaseSpec spec = StreamingSpec(300);
  spec.mechanism.kind = release::MechanismKind::kGeometricOrdinal;
  spec.mechanism.geometric_epsilon = 1.25;
  protocol::StreamingReplayOptions options;
  options.total_reports = 900;
  protocol::StreamingReplayResult result = MustReplay(spec, data, options);
  ASSERT_EQ(result.windows.size(), 3u);
  for (const release::StreamWindow& window : result.windows) {
    EXPECT_TRUE(window.released);
    // Three attributes, Expression (4) epsilon == declared epsilon each.
    EXPECT_NEAR(window.epsilon, 3 * 1.25, 1e-9);
    for (const std::vector<double>& marginal :
         window.artifacts.marginal_estimates) {
      double sum = 0.0;
      for (double p : marginal) {
        EXPECT_GE(p, 0.0);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot / resume.
// ---------------------------------------------------------------------------

TEST(StreamingSnapshotTest, TextRoundTripIsExact) {
  release::StreamingSnapshot snapshot;
  snapshot.next_sequence = 1234;
  snapshot.next_window = 3;
  snapshot.epsilon_spent = 5.318;
  snapshot.window_epsilons = {2.659, 0.0, 2.659};
  snapshot.cardinalities = {3, 2, 4};
  release::StreamingSnapshot::BucketCounts bucket;
  bucket.bucket = 3;
  bucket.num_reports = 400;
  bucket.counts = {120, 140, 140, 260, 140, 90, 110, 100, 100};
  snapshot.buckets.push_back(bucket);
  bucket.bucket = 4;
  bucket.num_reports = 34;
  bucket.counts = {10, 12, 12, 20, 14, 9, 11, 7, 7};
  snapshot.buckets.push_back(bucket);

  auto parsed = release::ParseStreamingSnapshot(
      release::PrintStreamingSnapshot(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == snapshot);

  EXPECT_FALSE(release::ParseStreamingSnapshot("garbage").ok());
  EXPECT_FALSE(release::ParseStreamingSnapshot(
                   release::PrintStreamingSnapshot(snapshot) + "bogus 1\n")
                   .ok());
}

// Kill/resume equivalence, the snapshot acceptance gate: pausing at any
// point -- including mid-bucket -- and resuming from the snapshot yields
// exactly the windows of the uninterrupted run.
TEST(StreamingSnapshotTest, KillResumeMatchesUninterruptedRun) {
  Dataset data = MakeSurvey(500, 43);
  release::ReleaseSpec spec = StreamingSpec(400);
  spec.streaming.window_kind = release::WindowKind::kSliding;
  spec.streaming.window_stride = 200;

  protocol::StreamingReplayOptions baseline_options;
  baseline_options.total_reports = 2000;
  protocol::StreamingReplayResult baseline =
      MustReplay(spec, data, baseline_options);
  const std::string full_transcript =
      release::PrintStreamWindows(baseline.windows);

  // 1000 pauses on a bucket boundary; 1130 pauses mid-bucket.
  for (uint64_t pause_at : {uint64_t{1000}, uint64_t{1130}}) {
    protocol::StreamingReplayOptions first_options;
    first_options.total_reports = 2000;
    first_options.pause_at = pause_at;
    first_options.num_ingest_threads = 2;
    protocol::StreamingReplayResult first =
        MustReplay(spec, data, first_options);
    ASSERT_TRUE(first.snapshot.has_value());
    EXPECT_FALSE(first.finished);
    EXPECT_EQ(first.snapshot->next_sequence, pause_at);

    // The snapshot survives its own serialization on the way.
    auto reloaded = release::ParseStreamingSnapshot(
        release::PrintStreamingSnapshot(*first.snapshot));
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

    protocol::StreamingReplayOptions second_options;
    second_options.total_reports = 2000;
    second_options.num_ingest_threads = 4;
    second_options.resume = &reloaded.value();
    protocol::StreamingReplayResult second =
        MustReplay(spec, data, second_options);
    EXPECT_TRUE(second.finished);
    EXPECT_EQ(second.first_sequence, pause_at);

    std::vector<release::StreamWindow> combined = first.windows;
    combined.insert(combined.end(), second.windows.begin(),
                    second.windows.end());
    EXPECT_EQ(release::PrintStreamWindows(combined), full_transcript)
        << "pause_at " << pause_at;
    EXPECT_DOUBLE_EQ(second.epsilon_spent, baseline.epsilon_spent);
  }
}

TEST(StreamingSnapshotTest, ResumeRejectsSchemaMismatch) {
  Dataset data = MakeSurvey(200, 47);
  release::ReleaseSpec spec = StreamingSpec(400);
  protocol::StreamingReplayOptions pause_options;
  pause_options.total_reports = 800;
  pause_options.pause_at = 300;
  protocol::StreamingReplayResult paused =
      MustReplay(spec, data, pause_options);
  ASSERT_TRUE(paused.snapshot.has_value());

  auto resumed = release::StreamingCollector::Resume(
      spec, {3, 2, 5}, release::StreamingCollectorOptions{},
      *paused.snapshot);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingSnapshotTest, SnapshotRequiresQuiescence) {
  release::ReleaseSpec spec = StreamingSpec(400);
  auto collector = release::StreamingCollector::Create(
      spec, {3, 2, 4}, release::StreamingCollectorOptions{});
  ASSERT_TRUE(collector.ok());
  ASSERT_TRUE(collector.value()->TrySubmit(0, 0, {1, 0, 2}));
  auto snapshot = collector.value()->Snapshot(1);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(collector.value()->DrainShard(0), 1u);
  EXPECT_TRUE(collector.value()->Snapshot(1).ok());
}

}  // namespace
}  // namespace mdrr
