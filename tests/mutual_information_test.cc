#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mdrr/core/dependence.h"
#include "mdrr/dataset/dataset.h"
#include "mdrr/rng/rng.h"

namespace mdrr {
namespace {

TEST(NmiTest, IdenticalVariablesGiveOne) {
  std::vector<uint32_t> x = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(NormalizedMutualInformation(x, 3, x, 3), 1.0, 1e-12);
}

TEST(NmiTest, BijectiveRelabelingGivesOne) {
  std::vector<uint32_t> x = {0, 1, 2, 0, 1, 2};
  std::vector<uint32_t> y = {2, 0, 1, 2, 0, 1};  // Permuted copy of x.
  EXPECT_NEAR(NormalizedMutualInformation(x, 3, y, 3), 1.0, 1e-12);
}

TEST(NmiTest, IndependentVariablesGiveZero) {
  // Balanced product design: every (x, y) cell equally likely.
  std::vector<uint32_t> x;
  std::vector<uint32_t> y;
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      x.push_back(a);
      y.push_back(b);
    }
  }
  EXPECT_NEAR(NormalizedMutualInformation(x, 3, y, 4), 0.0, 1e-12);
}

TEST(NmiTest, ConstantVariableGivesZero) {
  std::vector<uint32_t> x = {0, 0, 0, 0};
  std::vector<uint32_t> y = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(x, 2, y, 2), 0.0);
}

TEST(NmiTest, SymmetricInArguments) {
  Rng rng(3);
  std::vector<uint32_t> x;
  std::vector<uint32_t> y;
  for (int i = 0; i < 500; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(4));
    x.push_back(a);
    y.push_back(rng.Bernoulli(0.7) ? a % 3
                                   : static_cast<uint32_t>(rng.UniformInt(3)));
  }
  EXPECT_NEAR(NormalizedMutualInformation(x, 4, y, 3),
              NormalizedMutualInformation(y, 3, x, 4), 1e-12);
}

TEST(NmiTest, MonotoneInCouplingStrength) {
  Rng rng(7);
  double previous = -1.0;
  for (double coupling : {0.0, 0.3, 0.6, 0.9}) {
    std::vector<uint32_t> x;
    std::vector<uint32_t> y;
    for (int i = 0; i < 20000; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(3));
      x.push_back(a);
      y.push_back(rng.Bernoulli(coupling)
                      ? a
                      : static_cast<uint32_t>(rng.UniformInt(3)));
    }
    double nmi = NormalizedMutualInformation(x, 3, y, 3);
    EXPECT_GT(nmi, previous) << "coupling " << coupling;
    previous = nmi;
  }
}

TEST(NmiFromJointTest, MatchesCodeVersion) {
  Rng rng(11);
  std::vector<uint32_t> x;
  std::vector<uint32_t> y;
  std::vector<double> joint(6, 0.0);
  for (int i = 0; i < 1000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(2));
    uint32_t b = rng.Bernoulli(0.6) ? a + 1
                                    : static_cast<uint32_t>(rng.UniformInt(3));
    x.push_back(a);
    y.push_back(b);
    joint[a * 3 + b] += 1.0;
  }
  EXPECT_NEAR(NormalizedMutualInformationFromJoint(joint, 2, 3),
              NormalizedMutualInformation(x, 2, y, 3), 1e-12);
}

TEST(NmiFromJointTest, ClampsNegativesAndHandlesZeroMass) {
  EXPECT_GE(NormalizedMutualInformationFromJoint({0.6, -0.1, -0.1, 0.6}, 2,
                                                 2),
            0.0);
  EXPECT_DOUBLE_EQ(
      NormalizedMutualInformationFromJoint({0.0, 0.0, 0.0, 0.0}, 2, 2), 0.0);
}

TEST(DependenceMatrixWithMeasureTest, AllMeasuresProduceValidMatrices) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kOrdinal, {"0", "1", "2"}},
      Attribute{"B", AttributeType::kNominal, {"x", "y"}},
      Attribute{"C", AttributeType::kOrdinal, {"0", "1", "2", "3"}},
  };
  Rng rng(13);
  std::vector<std::vector<uint32_t>> cols(3);
  for (int i = 0; i < 3000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(3));
    cols[0].push_back(a);
    cols[1].push_back(rng.Bernoulli(0.8) ? (a > 0 ? 1u : 0u)
                                         : static_cast<uint32_t>(
                                               rng.UniformInt(2)));
    cols[2].push_back(static_cast<uint32_t>(rng.UniformInt(4)));
  }
  Dataset ds(schema, std::move(cols));

  for (DependenceMeasure measure :
       {DependenceMeasure::kPaperAuto, DependenceMeasure::kCramersV,
        DependenceMeasure::kAbsPearson,
        DependenceMeasure::kNormalizedMutualInformation}) {
    linalg::Matrix deps = DependenceMatrixWithMeasure(ds, measure);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(deps(i, i), 1.0);
      for (size_t j = 0; j < 3; ++j) {
        EXPECT_GE(deps(i, j), 0.0);
        EXPECT_LE(deps(i, j), 1.0);
        EXPECT_DOUBLE_EQ(deps(i, j), deps(j, i));
      }
    }
    // The coupled pair (A, B) dominates the independent pair (A, C)
    // under every measure.
    EXPECT_GT(deps(0, 1), deps(0, 2)) << "measure "
                                      << static_cast<int>(measure);
  }
}

TEST(DependenceMatrixWithMeasureTest, PaperAutoMatchesDefault) {
  std::vector<Attribute> schema = {
      Attribute{"A", AttributeType::kOrdinal, {"0", "1"}},
      Attribute{"B", AttributeType::kNominal, {"x", "y"}},
  };
  Dataset ds(schema, {{0, 1, 0, 1}, {0, 1, 1, 0}});
  linalg::Matrix via_measure =
      DependenceMatrixWithMeasure(ds, DependenceMeasure::kPaperAuto);
  linalg::Matrix direct = DependenceMatrix(ds);
  EXPECT_DOUBLE_EQ(via_measure(0, 1), direct(0, 1));
}

}  // namespace
}  // namespace mdrr
