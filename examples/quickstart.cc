// Quickstart: the classic single-question randomized response survey,
// run through the declarative release API.
//
// A controller asks n respondents a sensitive yes/no question and wants
// an unbiased estimate of the true "yes" rate without ever seeing a
// truthful answer. Instead of wiring protocol stages by hand, the
// controller writes down a ReleaseSpec -- mechanism, privacy budget,
// execution policy -- and lets ReleasePlanner validate, lower, and run
// it. The same spec, serialized (release/serialization.h), reproduces
// the release anywhere.
//
// Build & run:  ./build/example_quickstart

#include <cstdio>

#include "mdrr/dataset/dataset.h"
#include "mdrr/release/planner.h"
#include "mdrr/rng/rng.h"

int main() {
  const size_t n = 20000;
  const double true_yes_rate = 0.13;  // What the controller cannot see.

  // The survey data: one sensitive yes/no attribute, one record per
  // respondent. (In production this is the collected file; here we
  // simulate the population.)
  mdrr::Attribute answer;
  answer.name = "answer";
  answer.categories = {"no", "yes"};
  mdrr::Rng population(7);
  std::vector<uint32_t> truths(n);
  for (uint32_t& value : truths) {
    value = population.Bernoulli(true_yes_rate) ? 1 : 0;
  }
  mdrr::Dataset survey({answer}, {truths});

  // The whole release, declaratively: per-attribute RR (Protocol 1) at
  // keep probability 0.5, sequential reference execution at seed 7.
  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kIndependent;
  spec.budget.keep_probability = 0.5;
  spec.execution.seed = 7;

  auto plan = mdrr::release::ReleasePlanner::Plan(spec, &survey);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto artifacts = plan.value().Run();
  if (!artifacts.ok()) {
    std::fprintf(stderr, "release failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }

  // The controller reads everything off the artifacts: the observed
  // (biased) rate, the Eq. (2) estimate, and the privacy ledger.
  const mdrr::release::ReleaseArtifacts& a = artifacts.value();
  std::printf("respondents:              %zu\n", n);
  std::printf("observed 'yes' rate:      %.4f  (biased by randomization)\n",
              a.independent->lambda[0][1]);
  std::printf("estimated true rate:      %.4f\n", a.marginal_estimates[0][1]);
  std::printf("actual true rate:         %.4f  (for reference only)\n",
              true_yes_rate);
  std::printf("differential privacy:     eps = %.3f per respondent\n",
              a.total_epsilon());
  return 0;
}
