// Quickstart: the classic single-question randomized response survey.
//
// A controller asks n respondents a sensitive yes/no question. Each
// respondent flips her answer through a KeepUniform RR matrix before
// reporting; the controller recovers an unbiased estimate of the true
// "yes" rate with Eq. (2) and reads off the differential-privacy level.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "mdrr/core/estimator.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

int main() {
  const size_t n = 20000;
  const double true_yes_rate = 0.13;  // What the controller cannot see.
  const double keep_probability = 0.5;

  // 1. Each respondent randomizes her answer locally.
  //    KeepUniform(2, 0.5): report the truth w.p. 0.5 + 0.25, lie w.p 0.25.
  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(2, keep_probability);
  mdrr::Rng rng(7);
  std::vector<uint32_t> reported;
  reported.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t truth = rng.Bernoulli(true_yes_rate) ? 1 : 0;
    reported.push_back(matrix.Randomize(truth, rng));
  }

  // 2. The controller sees only `reported` and estimates the true rate.
  std::vector<double> lambda = mdrr::EmpiricalDistribution(reported, 2);
  auto estimate = mdrr::EstimateProjectedDistribution(matrix, lambda);
  if (!estimate.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }

  std::printf("respondents:              %zu\n", n);
  std::printf("observed 'yes' rate:      %.4f  (biased by randomization)\n",
              lambda[1]);
  std::printf("estimated true rate:      %.4f\n", estimate.value()[1]);
  std::printf("actual true rate:         %.4f  (for reference only)\n",
              true_yes_rate);
  std::printf("differential privacy:     eps = %.3f per respondent\n",
              matrix.Epsilon());
  std::printf("error-propagation bound:  Pmax/Pmin = %.3f (Section 2.3)\n",
              matrix.ConditionNumber());
  return 0;
}
