// Synthetic microdata release: the paper's introduction promises that RR
// can "re-create a synthetic estimate of the original data set by
// repeating each combination of attribute values as many times as
// dictated by its frequency in the estimated joint distribution". One
// ReleaseSpec declares the whole product -- RR-Clusters, a synthetic
// data set of the original size, a utility report, and the CSV output
// path -- and ReleasePlanner runs it.
//
// Build & run:  ./build/example_synthetic_release [output.csv]

#include <cstdio>

#include "mdrr/core/dependence.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/release/planner.h"

int main(int argc, char** argv) {
  const char* output_path = argc > 1 ? argv[1] : "synthetic_adult.csv";

  mdrr::Dataset original = mdrr::SynthesizeAdult(32561, 77);

  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kClusters;
  spec.mechanism.clustering = mdrr::ClusteringOptions{100.0, 0.1};
  spec.mechanism.dependence_source = mdrr::DependenceSource::kOracle;
  spec.budget.keep_probability = 0.8;
  spec.synthetic.enabled = true;  // records = 0 -> match the input size.
  spec.evaluation.utility_report = true;
  spec.execution.seed = 5;
  spec.output.synthetic_csv = output_path;

  auto plan = mdrr::release::ReleasePlanner::Plan(spec, &original);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto artifacts = plan.value().Run();
  if (!artifacts.ok()) {
    std::fprintf(stderr, "release failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  const mdrr::release::ReleaseArtifacts& a = artifacts.value();
  const mdrr::Dataset& synthetic = *a.synthetic;

  // Fidelity report 1: the utility report's per-attribute marginal
  // total-variation distances.
  std::printf("marginal fidelity (TV distance per attribute):\n");
  for (size_t j = 0; j < original.num_attributes(); ++j) {
    std::printf("  %-16s %.4f\n", original.attribute(j).name.c_str(),
                a.utility->marginal_tv[j]);
  }

  // Fidelity report 2: pairwise dependences (within vs across clusters).
  std::printf("\ndependence fidelity (true -> synthetic):\n");
  std::printf("  %-34s %6.3f -> %6.3f   (same cluster)\n",
              "Relationship <-> Sex",
              mdrr::DependenceBetween(original, mdrr::kAdultRelationship,
                                      mdrr::kAdultSex),
              mdrr::DependenceBetween(synthetic, mdrr::kAdultRelationship,
                                      mdrr::kAdultSex));
  std::printf("  %-34s %6.3f -> %6.3f   (across clusters: forced indep.)\n",
              "Education <-> Occupation",
              mdrr::DependenceBetween(original, mdrr::kAdultEducation,
                                      mdrr::kAdultOccupation),
              mdrr::DependenceBetween(synthetic, mdrr::kAdultEducation,
                                      mdrr::kAdultOccupation));

  std::printf("\nwrote %zu synthetic records to %s\n", synthetic.num_rows(),
              output_path);
  std::printf("clusters used: %s\n",
              mdrr::ClusteringToString(original, a.clustering).c_str());
  std::printf("release epsilon: %.3f\n", a.release_epsilon);
  return 0;
}
