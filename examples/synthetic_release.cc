// Synthetic microdata release: the paper's introduction promises that RR
// can "re-create a synthetic estimate of the original data set by
// repeating each combination of attribute values as many times as
// dictated by its frequency in the estimated joint distribution". This
// example runs RR-Clusters, synthesizes a full microdata set from the
// estimates, writes it to CSV, and reports its statistical fidelity.
//
// Build & run:  ./build/examples/synthetic_release [output.csv]

#include <cstdio>

#include "mdrr/core/dependence.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/csv.h"
#include "mdrr/rng/rng.h"

int main(int argc, char** argv) {
  const char* output_path = argc > 1 ? argv[1] : "synthetic_adult.csv";

  mdrr::Dataset original = mdrr::SynthesizeAdult(32561, 77);

  mdrr::RrClustersOptions options;
  options.keep_probability = 0.8;
  options.clustering = mdrr::ClusteringOptions{100.0, 0.1};
  mdrr::Rng rng(5);
  auto protocol = mdrr::RunRrClusters(original, options, rng);
  if (!protocol.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 protocol.status().ToString().c_str());
    return 1;
  }

  mdrr::Rng synth_rng(9);
  auto synthetic = mdrr::SynthesizeFromClusters(
      *protocol, static_cast<int64_t>(original.num_rows()), synth_rng);
  if (!synthetic.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 synthetic.status().ToString().c_str());
    return 1;
  }

  // Fidelity report 1: marginal distributions.
  std::printf("marginal fidelity (max |synthetic - true| per attribute):\n");
  for (size_t j = 0; j < original.num_attributes(); ++j) {
    std::vector<double> truth = mdrr::EmpiricalDistribution(
        original.column(j), original.attribute(j).cardinality());
    std::vector<double> synth = mdrr::EmpiricalDistribution(
        synthetic.value().column(j),
        synthetic.value().attribute(j).cardinality());
    double max_gap = 0.0;
    for (size_t v = 0; v < truth.size(); ++v) {
      max_gap = std::max(max_gap, std::fabs(truth[v] - synth[v]));
    }
    std::printf("  %-16s %.4f\n", original.attribute(j).name.c_str(),
                max_gap);
  }

  // Fidelity report 2: pairwise dependences (within vs across clusters).
  std::printf("\ndependence fidelity (true -> synthetic):\n");
  std::printf("  %-34s %6.3f -> %6.3f   (same cluster)\n",
              "Relationship <-> Sex",
              mdrr::DependenceBetween(original, mdrr::kAdultRelationship,
                                      mdrr::kAdultSex),
              mdrr::DependenceBetween(synthetic.value(),
                                      mdrr::kAdultRelationship,
                                      mdrr::kAdultSex));
  std::printf("  %-34s %6.3f -> %6.3f   (across clusters: forced indep.)\n",
              "Education <-> Occupation",
              mdrr::DependenceBetween(original, mdrr::kAdultEducation,
                                      mdrr::kAdultOccupation),
              mdrr::DependenceBetween(synthetic.value(),
                                      mdrr::kAdultEducation,
                                      mdrr::kAdultOccupation));

  mdrr::Status write_status = mdrr::WriteCsv(synthetic.value(), output_path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "CSV write failed: %s\n",
                 write_status.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %zu synthetic records to %s\n",
              synthetic.value().num_rows(), output_path);
  std::printf("clusters used: %s\n",
              mdrr::ClusteringToString(original, protocol.value().clusters)
                  .c_str());
  std::printf("release epsilon: %.3f\n", protocol.value().release_epsilon);
  return 0;
}
