// A live survey on the always-on streaming collector: reports arrive
// continuously, the collector counts them into tumbling windows, and
// every completed window re-runs the Eq. (2) closed forms on merged
// counts to publish one estimation summary -- records are touched once,
// at ingest, and every release afterwards is pure count arithmetic.
//
// Each released window charges its design epsilon against the spec's
// total budget. The example sizes the budget to afford four of the five
// windows, so the last one demonstrates the fail-closed degraded mode:
// counting continues, publication stops.
//
// The transcript printed here is bit-identical for ANY ingest thread
// count -- rerun with a different `kIngestThreads` to check. The
// service version of this loop (pause, snapshot, resume, verify) is
// tools/mdrr_collectd.cc.
//
// Build & run:  ./build/example_streaming_survey

#include <cstdio>

#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/rng.h"

int main() {
  // Four-category sensitive attribute (say, substance-use frequency).
  const std::vector<double> true_distribution = {0.70, 0.17, 0.09, 0.04};
  const double keep_probability = 0.55;
  const size_t kIngestThreads = 4;

  // The population: 25k respondents drawn from the true distribution.
  // They arrive in sequence order; the collector sees only the
  // randomized reports the replay perturbs party-side.
  mdrr::Attribute frequency;
  frequency.name = "frequency";
  frequency.categories = {"never", "monthly", "weekly", "daily"};
  std::vector<uint32_t> truths;
  mdrr::Rng rng(13);
  for (int i = 0; i < 25000; ++i) {
    truths.push_back(static_cast<uint32_t>(rng.Discrete(true_distribution)));
  }
  mdrr::Dataset survey({frequency}, {truths});

  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kIndependent;
  spec.budget.keep_probability = keep_probability;
  spec.budget.max_total_epsilon = 7.2;  // Affords 4 windows of ~1.77 each.
  spec.streaming.enabled = true;
  spec.streaming.window_size = 5000;
  spec.execution.seed = 14;

  mdrr::protocol::StreamingReplayOptions options;
  options.num_ingest_threads = kIngestThreads;
  options.collector.num_shards = 2;
  auto run = mdrr::protocol::RunStreamingReplay(spec, survey, options);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const auto& result = run.value();

  std::printf("streamed %llu reports through %zu ingest threads\n\n",
              static_cast<unsigned long long>(result.reports_ingested),
              kIngestThreads);
  std::printf("%8s  %16s  %26s\n", "window", "sequences",
              "estimate ('daily') / status");
  for (const mdrr::release::StreamWindow& window : result.windows) {
    if (window.released) {
      std::printf("%8llu  %7llu..%-7llu  %10.4f  (epsilon %.3f)\n",
                  static_cast<unsigned long long>(window.index),
                  static_cast<unsigned long long>(window.begin_sequence),
                  static_cast<unsigned long long>(window.end_sequence),
                  window.artifacts.marginal_estimates[0][3], window.epsilon);
    } else {
      std::printf("%8llu  %7llu..%-7llu  %10s  (budget exhausted)\n",
                  static_cast<unsigned long long>(window.index),
                  static_cast<unsigned long long>(window.begin_sequence),
                  static_cast<unsigned long long>(window.end_sequence),
                  "SUPPRESSED");
    }
  }
  std::printf("\ntrue value of 'daily': %.4f\n", true_distribution[3]);
  std::printf("epsilon spent %.3f of budget %.1f -- the suppressed window "
              "kept counting but published nothing\n",
              result.epsilon_spent, spec.budget.max_total_epsilon);

  // The archived spec: anyone can replay the identical window sequence
  // from this text (mdrr_cli run --spec=... or mdrr_collectd --spec=...).
  std::printf("\narchived spec:\n%s",
              mdrr::release::PrintReleaseSpec(spec).c_str());
  return 0;
}
