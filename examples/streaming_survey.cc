// A live survey with streaming estimation: reports arrive one at a time
// and the controller watches the Eq. (2) estimate tighten as its
// confidence interval shrinks. When the collection window closes, the
// final publication is NOT the ad-hoc stream state: the controller
// freezes a declarative ReleaseSpec, runs it through ReleasePlanner, and
// archives the spec text -- anyone can re-run the identical release from
// that file (mdrr_cli run --spec=...).
//
// Build & run:  ./build/example_streaming_survey

#include <cstdio>

#include "mdrr/core/collector.h"
#include "mdrr/core/risk.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/rng.h"

int main() {
  // Four-category sensitive attribute (say, substance-use frequency).
  const std::vector<double> true_distribution = {0.70, 0.17, 0.09, 0.04};
  const double keep_probability = 0.55;
  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(4, keep_probability);

  mdrr::ReportCollector collector(matrix);
  mdrr::Rng rng(13);

  std::printf("design epsilon per respondent: %.3f\n\n", collector.Epsilon());
  std::printf("%10s  %28s  %10s\n", "reports",
              "estimate (rarest category)", "+/- 95% CI");

  const int checkpoints[] = {200, 1000, 5000, 25000, 125000};
  std::vector<uint32_t> truths;  // The population, accumulated.
  int produced = 0;
  for (int checkpoint : checkpoints) {
    while (produced < checkpoint) {
      uint32_t truth = static_cast<uint32_t>(rng.Discrete(true_distribution));
      truths.push_back(truth);
      uint32_t report = matrix.Randomize(truth, rng);
      if (!collector.AddReport(report).ok()) return 1;
      ++produced;
    }
    auto estimate = collector.Estimate();
    auto ci = collector.ConfidenceHalfWidths(0.05);
    if (!estimate.ok() || !ci.ok()) return 1;
    std::printf("%10d  %28.4f  %10.4f\n", produced, estimate.value()[3],
                ci.value()[3]);
  }
  std::printf("\ntrue value of the rarest category: %.4f\n",
              true_distribution[3]);

  // The risk sheet for this design under the estimated prior.
  auto prior = collector.Estimate();
  auto expected = mdrr::ExpectedDisclosureRisk(matrix, prior.value());
  if (expected.ok()) {
    std::printf("\ndisclosure risk under the estimated prior:\n");
    std::printf("  baseline attacker success (prior only): %.4f\n",
                mdrr::PriorBaselineRisk(prior.value()));
    std::printf("  expected attacker success (with report): %.4f\n",
                expected.value());
  }

  // Collection closed: publish the official release from a spec. The
  // collector was the live view; the archived ReleaseSpec is the
  // reproducible publication.
  mdrr::Attribute frequency;
  frequency.name = "frequency";
  frequency.categories = {"never", "monthly", "weekly", "daily"};
  mdrr::Dataset survey({frequency}, {truths});

  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kIndependent;
  spec.budget.keep_probability = keep_probability;
  spec.execution.seed = 14;

  auto plan = mdrr::release::ReleasePlanner::Plan(spec, &survey);
  if (!plan.ok()) return 1;
  auto artifacts = plan.value().Run();
  if (!artifacts.ok()) return 1;

  std::printf("\nofficial release (from the archived ReleaseSpec):\n");
  std::printf("  estimated rate of '%s': %.4f  (stream said %.4f)\n",
              frequency.categories[3].c_str(),
              artifacts.value().marginal_estimates[0][3],
              prior.value()[3]);
  std::printf("  release epsilon: %.3f\n",
              artifacts.value().total_epsilon());
  std::printf("\narchived spec:\n%s",
              mdrr::release::PrintReleaseSpec(spec).c_str());
  return 0;
}
