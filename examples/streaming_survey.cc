// A live survey with streaming estimation: reports arrive one at a time
// and the controller watches the Eq. (2) estimate tighten as its
// confidence interval shrinks -- together with the disclosure-risk
// numbers a data protection officer would want printed next to it.
//
// Build & run:  ./build/examples/streaming_survey

#include <cstdio>

#include "mdrr/core/collector.h"
#include "mdrr/core/risk.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/rng/rng.h"

int main() {
  // Four-category sensitive attribute (say, substance-use frequency).
  const std::vector<double> true_distribution = {0.70, 0.17, 0.09, 0.04};
  const double keep_probability = 0.55;
  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(4, keep_probability);

  mdrr::ReportCollector collector(matrix);
  mdrr::Rng rng(13);

  std::printf("design epsilon per respondent: %.3f\n\n", collector.Epsilon());
  std::printf("%10s  %28s  %10s\n", "reports",
              "estimate (rarest category)", "+/- 95% CI");

  const int checkpoints[] = {200, 1000, 5000, 25000, 125000};
  int produced = 0;
  for (int checkpoint : checkpoints) {
    while (produced < checkpoint) {
      uint32_t truth = static_cast<uint32_t>(rng.Discrete(true_distribution));
      uint32_t report = matrix.Randomize(truth, rng);
      if (!collector.AddReport(report).ok()) return 1;
      ++produced;
    }
    auto estimate = collector.Estimate();
    auto ci = collector.ConfidenceHalfWidths(0.05);
    if (!estimate.ok() || !ci.ok()) return 1;
    std::printf("%10d  %28.4f  %10.4f\n", produced, estimate.value()[3],
                ci.value()[3]);
  }
  std::printf("\ntrue value of the rarest category: %.4f\n",
              true_distribution[3]);

  // The risk sheet for this design under the estimated prior.
  auto prior = collector.Estimate();
  auto expected = mdrr::ExpectedDisclosureRisk(matrix, prior.value());
  if (expected.ok()) {
    std::printf("\ndisclosure risk under the estimated prior:\n");
    std::printf("  baseline attacker success (prior only): %.4f\n",
                mdrr::PriorBaselineRisk(prior.value()));
    std::printf("  expected attacker success (with report): %.4f\n",
                expected.value());
  }
  return 0;
}
