// A full multi-attribute local-anonymization pipeline on Adult-style
// microdata -- the workload the paper's introduction motivates:
//
//   1. n individuals each hold one 8-attribute record;
//   2. attribute dependences are assessed (here: Section 4.1, per-
//      attribute RR) and attributes are clustered (Algorithm 1);
//   3. each individual publishes cluster-wise randomized responses
//      (RR-Joint per cluster at the Section 6.3.2 calibration);
//   4. the controller estimates cluster joints with Eq. (2), repairs
//      cross-cluster structure with RR-Adjustment (Algorithm 2), and
//      answers count queries;
//   5. the total privacy cost is reported by sequential composition.
//
// Build & run:  ./build/examples/survey_pipeline

#include <cstdio>

#include "mdrr/core/adjustment.h"
#include "mdrr/core/privacy.h"
#include "mdrr/core/rr_clusters.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/rng/rng.h"

int main() {
  // The true microdata, held in shards of one record per individual.
  mdrr::Dataset survey = mdrr::SynthesizeAdult(32561, 42);
  std::printf("survey: %zu respondents x %zu attributes\n",
              survey.num_rows(), survey.num_attributes());

  // Steps 2-3: dependence assessment + clustering + cluster-wise RR.
  mdrr::RrClustersOptions options;
  options.keep_probability = 0.7;
  options.clustering = mdrr::ClusteringOptions{50.0, 0.1};
  options.dependence_source = mdrr::DependenceSource::kRandomizedResponse;
  options.dependence_keep_probability = 0.7;

  mdrr::Rng rng(2024);
  auto protocol = mdrr::RunRrClusters(survey, options, rng);
  if (!protocol.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 protocol.status().ToString().c_str());
    return 1;
  }
  std::printf("clusters: %s\n",
              mdrr::ClusteringToString(survey, protocol.value().clusters)
                  .c_str());

  // Step 4: adjusted weights over the randomized records.
  auto adjusted = mdrr::MakeAdjustedEstimate(*protocol);
  if (!adjusted.ok()) {
    std::fprintf(stderr, "adjustment failed: %s\n",
                 adjusted.status().ToString().c_str());
    return 1;
  }

  // Answer a few analyst queries and compare with the (secret) truth.
  struct NamedQuery {
    const char* description;
    mdrr::CountQuery query;
  };
  const uint32_t married = 0;   // Married-civ-spouse.
  const uint32_t husband = 2;   // Relationship = Husband.
  const uint32_t high_income = 1;
  std::vector<NamedQuery> queries = {
      {"married husbands",
       {{mdrr::kAdultMaritalStatus, mdrr::kAdultRelationship},
        {{married, husband}}}},
      {"high-income married",
       {{mdrr::kAdultMaritalStatus, mdrr::kAdultIncome},
        {{married, high_income}}}},
      {"female + high income",
       {{mdrr::kAdultSex, mdrr::kAdultIncome}, {{0, high_income}}}},
  };

  mdrr::EmpiricalCounts truth(survey);
  std::printf("\n%-24s %10s %12s %10s\n", "query", "true", "estimated",
              "rel err");
  for (const NamedQuery& nq : queries) {
    double t = truth.EstimateCount(nq.query);
    double e = adjusted.value().EstimateCount(nq.query);
    std::printf("%-24s %10.0f %12.1f %10.4f\n", nq.description, t, e,
                mdrr::eval::RelativeError(e, t));
  }

  // Step 5: privacy ledger.
  mdrr::PrivacyAccountant accountant;
  accountant.Spend("dependence assessment (Sec 4.1)",
                   protocol.value().dependence_epsilon);
  accountant.Spend("cluster-wise RR release",
                   protocol.value().release_epsilon);
  std::printf("\nprivacy ledger:\n%s", accountant.Report().c_str());
  std::printf(
      "note: RR-Adjustment post-processes the randomized data only, so it\n"
      "adds no privacy cost (Section 5).\n");
  return 0;
}
