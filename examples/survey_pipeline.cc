// A full multi-attribute local-anonymization pipeline on Adult-style
// microdata -- the workload the paper's introduction motivates:
//
//   1. n individuals each hold one 8-attribute record;
//   2. attribute dependences are assessed (Section 4.1 per-attribute
//      RR), attributes are clustered (Algorithm 1), and each individual
//      publishes cluster-wise randomized responses (RR-Joint per
//      cluster at the Section 6.3.2 calibration);
//   3. the controller repairs cross-cluster structure with
//      RR-Adjustment (Algorithm 2) and answers count queries;
//   4. the total privacy cost is reported by sequential composition.
//
// All of it is one declarative ReleaseSpec: the clusters mechanism with
// adjustment enabled, planned and executed by ReleasePlanner. The
// artifacts carry the clustering, the adjusted weights, and the ledger.
//
// Build & run:  ./build/example_survey_pipeline

#include <cstdio>

#include "mdrr/core/privacy.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/release/planner.h"

int main() {
  // The true microdata, held in shards of one record per individual.
  mdrr::Dataset survey = mdrr::SynthesizeAdult(32561, 42);
  std::printf("survey: %zu respondents x %zu attributes\n",
              survey.num_rows(), survey.num_attributes());

  // Steps 2-3, declaratively: dependence assessment + clustering +
  // cluster-wise RR + Algorithm 2 adjustment under one spec.
  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kClusters;
  spec.mechanism.clustering = mdrr::ClusteringOptions{50.0, 0.1};
  spec.mechanism.dependence_source =
      mdrr::DependenceSource::kRandomizedResponse;
  spec.budget.keep_probability = 0.7;
  spec.budget.dependence_keep_probability = 0.7;
  spec.adjustment.enabled = true;
  spec.execution.seed = 2024;

  auto plan = mdrr::release::ReleasePlanner::Plan(spec, &survey);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  auto artifacts = plan.value().Run();
  if (!artifacts.ok()) {
    std::fprintf(stderr, "release failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  const mdrr::release::ReleaseArtifacts& a = artifacts.value();
  std::printf("clusters: %s\n",
              mdrr::ClusteringToString(survey, a.clustering).c_str());

  // The artifacts' best estimator (adjusted weights, since adjustment
  // ran) answers analyst queries.
  auto estimate = mdrr::release::MakeJointEstimate(a);
  if (!estimate.ok()) {
    std::fprintf(stderr, "estimator failed: %s\n",
                 estimate.status().ToString().c_str());
    return 1;
  }

  struct NamedQuery {
    const char* description;
    mdrr::CountQuery query;
  };
  const uint32_t married = 0;   // Married-civ-spouse.
  const uint32_t husband = 2;   // Relationship = Husband.
  const uint32_t high_income = 1;
  std::vector<NamedQuery> queries = {
      {"married husbands",
       {{mdrr::kAdultMaritalStatus, mdrr::kAdultRelationship},
        {{married, husband}}}},
      {"high-income married",
       {{mdrr::kAdultMaritalStatus, mdrr::kAdultIncome},
        {{married, high_income}}}},
      {"female + high income",
       {{mdrr::kAdultSex, mdrr::kAdultIncome}, {{0, high_income}}}},
  };

  mdrr::EmpiricalCounts truth(survey);
  std::printf("\n%-24s %10s %12s %10s\n", "query", "true", "estimated",
              "rel err");
  for (const NamedQuery& nq : queries) {
    double t = truth.EstimateCount(nq.query);
    double e = estimate.value()->EstimateCount(nq.query);
    std::printf("%-24s %10.0f %12.1f %10.4f\n", nq.description, t, e,
                mdrr::eval::RelativeError(e, t));
  }

  // Step 4: privacy ledger, straight from the artifacts.
  mdrr::PrivacyAccountant accountant;
  accountant.Spend("dependence assessment (Sec 4.1)", a.dependence_epsilon);
  accountant.Spend("cluster-wise RR release", a.release_epsilon);
  std::printf("\nprivacy ledger:\n%s", accountant.Report().c_str());
  std::printf(
      "note: RR-Adjustment post-processes the randomized data only, so it\n"
      "adds no privacy cost (Section 5).\n");
  return 0;
}
