// Parallel batch perturbation: the BatchPerturbationEngine sharding a
// large synthetic Adult workload across worker threads.
//
// The engine gives every fixed-size shard of records its own deterministic
// RNG sub-stream, so the released data and the estimates are bit-identical
// for any thread count -- this example runs the same release at 1 thread
// and at one-thread-per-core and checks that claim before printing the
// estimated marginal of one attribute.
//
// Build & run:  ./build/example_parallel_batch [--n=200000] [--p=0.7]

#include <cstdio>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/dataset/adult.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 200000));
  const double p = flags.GetDouble("p", 0.7);

  mdrr::Dataset data = mdrr::SynthesizeAdult(n, /*seed=*/2020);
  std::printf("workload: %zu synthetic Adult records, %zu attributes\n",
              data.num_rows(), data.num_attributes());

  mdrr::BatchPerturbationOptions options;
  options.seed = 1;
  options.num_threads = 1;
  mdrr::BatchPerturbationEngine sequential(options);
  options.num_threads = 0;  // One worker per hardware core.
  mdrr::BatchPerturbationEngine parallel(options);

  auto one = sequential.RunIndependent(data, mdrr::RrIndependentOptions{p});
  auto many = parallel.RunIndependent(data, mdrr::RrIndependentOptions{p});
  if (!one.ok() || !many.ok()) {
    std::fprintf(stderr, "release failed\n");
    return 1;
  }

  bool identical = one.value().estimated == many.value().estimated;
  for (size_t j = 0; identical && j < data.num_attributes(); ++j) {
    identical = one.value().randomized.column(j) ==
                many.value().randomized.column(j);
  }
  std::printf("1 thread vs all cores bit-identical: %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;

  const mdrr::Attribute& a = data.attribute(0);
  std::printf("estimated marginal of '%s' (eps_total = %.3f):\n",
              a.name.c_str(), many.value().total_epsilon);
  for (size_t v = 0; v < a.cardinality(); ++v) {
    std::printf("  %-24s %.4f\n", a.categories[v].c_str(),
                many.value().estimated[0][v]);
  }
  return 0;
}
