// Parallel batch pipeline: the BatchPerturbationEngine driving a full
// release -- perturbation, Algorithm 2 adjustment, and synthetic
// release -- over a large synthetic Adult workload.
//
// The engine gives every fixed-size shard of records its own deterministic
// RNG sub-stream (and merges floating-point partials in chunk order), so
// every stage's output is bit-identical for any thread count -- this
// example runs the same pipeline at 1 thread and at one-thread-per-core
// and checks that claim before printing the estimated marginal of one
// attribute.
//
// Build & run:  ./build/example_parallel_batch [--n=200000] [--p=0.7]

#include <cstdio>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/dataset/adult.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 200000));
  const double p = flags.GetDouble("p", 0.7);

  mdrr::Dataset data = mdrr::SynthesizeAdult(n, /*seed=*/2020);
  std::printf("workload: %zu synthetic Adult records, %zu attributes\n",
              data.num_rows(), data.num_attributes());

  mdrr::BatchPerturbationOptions options;
  options.seed = 1;
  options.num_threads = 1;
  mdrr::BatchPerturbationEngine sequential(options);
  options.num_threads = 0;  // One worker per hardware core.
  mdrr::BatchPerturbationEngine parallel(options);

  auto one = sequential.RunIndependent(data, mdrr::RrIndependentOptions{p});
  auto many = parallel.RunIndependent(data, mdrr::RrIndependentOptions{p});
  if (!one.ok() || !many.ok()) {
    std::fprintf(stderr, "release failed\n");
    return 1;
  }

  bool identical = one.value().estimated == many.value().estimated;
  for (size_t j = 0; identical && j < data.num_attributes(); ++j) {
    identical = one.value().randomized.column(j) ==
                many.value().randomized.column(j);
  }
  std::printf("perturbation bit-identical:      %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;

  // Adjustment (Algorithm 2) and synthetic release through the same
  // engine: both shard and both stay bit-identical across thread counts.
  std::vector<mdrr::AdjustmentGroup> groups =
      mdrr::GroupsFromIndependent(one.value());
  auto adjust_one = sequential.RunAdjustment(groups, data.num_rows());
  auto adjust_many = parallel.RunAdjustment(groups, data.num_rows());
  auto synth_one = sequential.SynthesizeIndependent(
      one.value(), static_cast<int64_t>(data.num_rows()));
  auto synth_many = parallel.SynthesizeIndependent(
      many.value(), static_cast<int64_t>(data.num_rows()));
  if (!adjust_one.ok() || !adjust_many.ok() || !synth_one.ok() ||
      !synth_many.ok()) {
    std::fprintf(stderr, "adjustment or synthesis failed\n");
    return 1;
  }
  bool adjust_identical =
      adjust_one.value().weights == adjust_many.value().weights;
  std::printf("adjustment bit-identical:        %s (%d iterations)\n",
              adjust_identical ? "yes" : "NO",
              adjust_many.value().iterations);
  bool synth_identical = true;
  for (size_t j = 0; synth_identical && j < data.num_attributes(); ++j) {
    synth_identical =
        synth_one.value().column(j) == synth_many.value().column(j);
  }
  std::printf("synthetic release bit-identical: %s\n",
              synth_identical ? "yes" : "NO");
  if (!adjust_identical || !synth_identical) return 1;

  const mdrr::Attribute& a = data.attribute(0);
  std::printf("estimated marginal of '%s' (eps_total = %.3f):\n",
              a.name.c_str(), many.value().total_epsilon);
  for (size_t v = 0; v < a.cardinality(); ++v) {
    std::printf("  %-24s %.4f\n", a.categories[v].c_str(),
                many.value().estimated[0][v]);
  }
  return 0;
}
