// Parallel batch pipeline: one sharded-policy ReleaseSpec driving a full
// release -- perturbation, Algorithm 2 adjustment, and synthetic
// release -- over a large synthetic Adult workload.
//
// The sharded execution policy gives every fixed-size shard of records
// its own deterministic RNG sub-stream (and merges floating-point
// partials in chunk order), so every stage's output is bit-identical for
// any thread count. This example runs the SAME spec at 1 thread and at
// one-thread-per-core and checks that claim before printing the
// estimated marginal of one attribute.
//
// Build & run:  ./build/example_parallel_batch [--n=200000] [--p=0.7]

#include <cstdio>
#include <vector>

#include "mdrr/common/flags.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/release/planner.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 200000));
  const double p = flags.GetDouble("p", 0.7);

  mdrr::Dataset data = mdrr::SynthesizeAdult(n, /*seed=*/2020);
  std::printf("workload: %zu synthetic Adult records, %zu attributes\n",
              data.num_rows(), data.num_attributes());

  // One spec: Protocol 1 + adjustment + synthetic release, sharded
  // policy at seed 1. Only num_threads differs between the two runs --
  // and num_threads is the one knob that never changes output.
  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kIndependent;
  spec.budget.keep_probability = p;
  spec.adjustment.enabled = true;
  spec.synthetic.enabled = true;
  spec.execution.kind = mdrr::release::PolicyKind::kSharded;
  spec.execution.seed = 1;

  auto run_with_threads = [&](size_t threads)
      -> mdrr::StatusOr<mdrr::release::ReleaseArtifacts> {
    spec.execution.num_threads = threads;
    MDRR_ASSIGN_OR_RETURN(mdrr::release::ReleasePlan plan,
                          mdrr::release::ReleasePlanner::Plan(spec, &data));
    return plan.Run();
  };

  auto one = run_with_threads(1);
  auto many = run_with_threads(0);  // One worker per hardware core.
  if (!one.ok() || !many.ok()) {
    std::fprintf(stderr, "release failed\n");
    return 1;
  }
  const mdrr::release::ReleaseArtifacts& a1 = one.value();
  const mdrr::release::ReleaseArtifacts& aN = many.value();

  bool identical = a1.marginal_estimates == aN.marginal_estimates;
  for (size_t j = 0; identical && j < data.num_attributes(); ++j) {
    identical = a1.randomized.column(j) == aN.randomized.column(j);
  }
  std::printf("perturbation bit-identical:      %s\n",
              identical ? "yes" : "NO");
  if (!identical) return 1;

  bool adjust_identical =
      a1.adjustment->weights == aN.adjustment->weights;
  std::printf("adjustment bit-identical:        %s (%d iterations)\n",
              adjust_identical ? "yes" : "NO", aN.adjustment->iterations);
  bool synth_identical = true;
  for (size_t j = 0; synth_identical && j < data.num_attributes(); ++j) {
    synth_identical = a1.synthetic->column(j) == aN.synthetic->column(j);
  }
  std::printf("synthetic release bit-identical: %s\n",
              synth_identical ? "yes" : "NO");
  if (!adjust_identical || !synth_identical) return 1;

  const mdrr::Attribute& attribute = data.attribute(0);
  std::printf("estimated marginal of '%s' (eps_total = %.3f):\n",
              attribute.name.c_str(), aN.total_epsilon());
  for (size_t v = 0; v < attribute.cardinality(); ++v) {
    std::printf("  %-24s %.4f\n", attribute.categories[v].c_str(),
                aN.marginal_estimates[0][v]);
  }
  for (const mdrr::release::StageTiming& timing : aN.timings) {
    std::printf("stage %-10s %8.3fs\n", timing.stage.c_str(),
                timing.seconds);
  }
  return 0;
}
