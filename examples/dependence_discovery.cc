// Privacy-preserving dependence discovery: the three methods of Sections
// 4.1-4.3 side by side on the same survey, with their accuracy, privacy
// and communication trade-offs, and the attribute clustering each one
// induces. This is the decision an RR-Clusters deployment has to make
// before anyone publishes data.
//
// Build & run:  ./build/examples/dependence_discovery

#include <cmath>
#include <cstdio>

#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/dataset/adult.h"

namespace {

void Report(const char* name, const mdrr::Dataset& survey,
            const mdrr::DependenceEstimate& estimate,
            const mdrr::linalg::Matrix& oracle) {
  double max_dev = 0.0;
  for (size_t i = 0; i < estimate.dependences.rows(); ++i) {
    for (size_t j = 0; j < estimate.dependences.cols(); ++j) {
      max_dev = std::max(max_dev, std::fabs(estimate.dependences(i, j) -
                                            oracle(i, j)));
    }
  }
  auto clusters = mdrr::ClusterAttributes(survey, estimate.dependences,
                                          mdrr::ClusteringOptions{50.0, 0.1});
  std::printf("\n%s\n", name);
  std::printf("  max deviation from oracle: %.4f\n", max_dev);
  if (std::isinf(estimate.epsilon)) {
    std::printf("  privacy: NOT differentially private (exact values)\n");
  } else {
    std::printf("  privacy: eps = %.3f\n", estimate.epsilon);
  }
  std::printf("  messages exchanged: %llu\n",
              static_cast<unsigned long long>(estimate.messages));
  if (clusters.ok()) {
    std::printf("  induced clustering (Tv=50, Td=0.1): %s\n",
                mdrr::ClusteringToString(survey, clusters.value()).c_str());
  }
}

}  // namespace

int main() {
  // A moderate survey so the literal secure-sum protocol stays quick.
  mdrr::Dataset survey = mdrr::SynthesizeAdult(2000, 11);
  std::printf("survey: %zu respondents x %zu attributes\n",
              survey.num_rows(), survey.num_attributes());

  mdrr::DependenceEstimate oracle = mdrr::OracleDependences(survey);
  Report("baseline: trusted party (oracle)", survey, oracle,
         oracle.dependences);

  Report("Section 4.1: RR on each attribute", survey,
         mdrr::RandomizedResponseDependences(survey, 0.8, 101),
         oracle.dependences);

  auto secure = mdrr::SecureSumDependences(
      survey, mdrr::mpc::SimulationMode::kFastSimulation, 103);
  if (secure.ok()) {
    Report("Section 4.2: exact bivariate distributions via secure sum",
           survey, secure.value(), oracle.dependences);
  }

  auto pairwise = mdrr::PairwiseRrDependences(
      survey, 0.8, mdrr::mpc::SimulationMode::kFastSimulation, 107);
  if (pairwise.ok()) {
    Report("Section 4.3: RR on each attribute pair + secure sum", survey,
           pairwise.value(), oracle.dependences);
  }

  std::printf(
      "\nreading guide: 4.2 is exact but leaks exact distributions; 4.1 is\n"
      "cheapest and differentially private but attenuates dependences\n"
      "(Corollary 1 preserves their ranking); 4.3 buys a finite epsilon\n"
      "with secure-sum communication.\n");
  return 0;
}
