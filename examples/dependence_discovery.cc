// Privacy-preserving dependence discovery: the three methods of Sections
// 4.1-4.3 side by side on the same survey, with their accuracy and
// privacy trade-offs and the attribute clustering each one induces. This
// is the decision an RR-Clusters deployment has to make before anyone
// publishes data -- so it is exactly one field of the ReleaseSpec: the
// same spec is run four times, varying only
// `mechanism.dependence_source`.
//
// Build & run:  ./build/example_dependence_discovery

#include <cmath>
#include <cstdio>

#include "mdrr/dataset/adult.h"
#include "mdrr/release/planner.h"

namespace {

using mdrr::release::ReleaseArtifacts;

void Report(const char* name, const mdrr::Dataset& survey,
            const ReleaseArtifacts& artifacts,
            const mdrr::linalg::Matrix& oracle) {
  double max_dev = 0.0;
  for (size_t i = 0; i < artifacts.dependences.rows(); ++i) {
    for (size_t j = 0; j < artifacts.dependences.cols(); ++j) {
      max_dev = std::max(max_dev, std::fabs(artifacts.dependences(i, j) -
                                            oracle(i, j)));
    }
  }
  std::printf("\n%s\n", name);
  std::printf("  max deviation from oracle: %.4f\n", max_dev);
  if (std::isinf(artifacts.dependence_epsilon)) {
    std::printf("  privacy: NOT differentially private (exact values)\n");
  } else if (artifacts.dependence_epsilon == 0.0) {
    std::printf("  privacy: trusted party, nothing published\n");
  } else {
    std::printf("  privacy: eps = %.3f\n", artifacts.dependence_epsilon);
  }
  std::printf("  induced clustering (Tv=50, Td=0.1): %s\n",
              mdrr::ClusteringToString(survey, artifacts.clustering).c_str());
}

}  // namespace

int main() {
  // A moderate survey so the secure-sum simulation stays quick.
  mdrr::Dataset survey = mdrr::SynthesizeAdult(2000, 11);
  std::printf("survey: %zu respondents x %zu attributes\n",
              survey.num_rows(), survey.num_attributes());

  // One spec; the runs differ only in the dependence source.
  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kClusters;
  spec.mechanism.clustering = mdrr::ClusteringOptions{50.0, 0.1};
  spec.budget.keep_probability = 0.8;
  spec.budget.dependence_keep_probability = 0.8;
  spec.execution.seed = 101;

  struct Method {
    const char* name;
    mdrr::DependenceSource source;
  };
  const Method methods[] = {
      {"baseline: trusted party (oracle)", mdrr::DependenceSource::kOracle},
      {"Section 4.1: RR on each attribute",
       mdrr::DependenceSource::kRandomizedResponse},
      {"Section 4.2: exact bivariate distributions via secure sum",
       mdrr::DependenceSource::kSecureSum},
      {"Section 4.3: RR on each attribute pair + secure sum",
       mdrr::DependenceSource::kPairwiseRr},
  };

  mdrr::linalg::Matrix oracle;
  for (const Method& method : methods) {
    spec.mechanism.dependence_source = method.source;
    auto plan = mdrr::release::ReleasePlanner::Plan(spec, &survey);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto artifacts = plan.value().Run();
    if (!artifacts.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.name,
                   artifacts.status().ToString().c_str());
      // Without the oracle baseline there is nothing to compare against.
      if (method.source == mdrr::DependenceSource::kOracle) return 1;
      continue;
    }
    if (method.source == mdrr::DependenceSource::kOracle) {
      oracle = artifacts.value().dependences;
    }
    Report(method.name, survey, artifacts.value(), oracle);
  }

  std::printf(
      "\nreading guide: 4.2 is exact but leaks exact distributions; 4.1 is\n"
      "cheapest and differentially private but attenuates dependences\n"
      "(Corollary 1 preserves their ranking); 4.3 buys a finite epsilon\n"
      "with secure-sum communication.\n");
  return 0;
}
