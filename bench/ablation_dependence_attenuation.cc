// Ablation A4: Proposition 1 / Corollary 1 in practice -- covariance
// attenuation under per-attribute KeepUniform randomization is exactly
// p_a * p_b, and the dependence ranking used by Algorithm 1 survives.
//
// Usage: ablation_dependence_attenuation [--n=200000] [--seed=1]

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/descriptive.h"

namespace {

std::vector<double> ToDouble(const std::vector<uint32_t>& v) {
  return std::vector<double>(v.begin(), v.end());
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 200000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Ablation: Proposition 1 covariance attenuation Cov(Y) = p^2 Cov(X)");

  // Correlated ordinal pair.
  mdrr::Rng rng(seed);
  std::vector<uint32_t> xa(n);
  std::vector<uint32_t> xb(n);
  for (size_t i = 0; i < n; ++i) {
    xa[i] = static_cast<uint32_t>(rng.UniformInt(5));
    xb[i] = rng.Bernoulli(0.75) ? xa[i]
                                : static_cast<uint32_t>(rng.UniformInt(5));
  }
  double cov_x = mdrr::stats::Covariance(ToDouble(xa), ToDouble(xb));
  std::printf("# n = %zu, Cov(Xa, Xb) = %.5f\n", n, cov_x);
  std::printf("%6s  %12s  %12s  %10s\n", "p", "Cov(Ya,Yb)", "p^2 Cov(X)",
              "ratio");
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(5, p);
    std::vector<uint32_t> ya = matrix.RandomizeColumn(xa, rng);
    std::vector<uint32_t> yb = matrix.RandomizeColumn(xb, rng);
    double cov_y = mdrr::stats::Covariance(ToDouble(ya), ToDouble(yb));
    double predicted = p * p * cov_x;
    std::printf("%6.1f  %12.5f  %12.5f  %10.3f\n", p, cov_y, predicted,
                predicted != 0.0 ? cov_y / predicted : 0.0);
  }

  // Ranking preservation on Adult (Corollary 1's consequence for
  // Algorithm 1): the top-3 pair ranking under randomization.
  mdrr::Dataset adult = mdrr::SynthesizeAdult(32561, seed + 1);
  mdrr::DependenceEstimate oracle = mdrr::OracleDependences(adult);
  std::printf("\n# dependence ranking preservation on Adult (top pairs)\n");
  std::printf("%6s  %24s  %24s\n", "p", "dep(Rel,Sex) rnd/true",
              "dep(Marital,Rel) rnd/true");
  double true_rs = oracle.dependences(mdrr::kAdultRelationship,
                                      mdrr::kAdultSex);
  double true_mr = oracle.dependences(mdrr::kAdultMaritalStatus,
                                      mdrr::kAdultRelationship);
  for (double p : {0.3, 0.5, 0.7, 0.9}) {
    mdrr::DependenceEstimate randomized =
        mdrr::RandomizedResponseDependences(adult, p, seed + 100);
    double rs = randomized.dependences(mdrr::kAdultRelationship,
                                       mdrr::kAdultSex);
    double mr = randomized.dependences(mdrr::kAdultMaritalStatus,
                                       mdrr::kAdultRelationship);
    std::printf("%6.1f  %11.3f /%10.3f  %11.3f /%10.3f   order %s\n", p, rs,
                true_rs, mr, true_mr,
                (rs > mr) == (true_rs > true_mr) ? "preserved" : "BROKEN");
  }
  return 0;
}
