// Microbenchmarks of the hot paths every experiment exercises:
// randomization throughput (structured and alias-table), domain
// composition, empirical distributions, and the full RR-Independent
// protocol on Adult-sized data.

#include <vector>

#include <benchmark/benchmark.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/alias_sampler.h"
#include "mdrr/rng/rng.h"

namespace {

void BM_StructuredRandomizeColumn(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(r, 0.7);
  mdrr::Rng rng(1);
  std::vector<uint32_t> codes(32561);
  for (auto& c : codes) c = static_cast<uint32_t>(rng.UniformInt(r));
  for (auto _ : state) {
    auto result = matrix.RandomizeColumn(codes, rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(codes.size()));
}
BENCHMARK(BM_StructuredRandomizeColumn)->Arg(2)->Arg(16)->Arg(300);

void BM_AliasSample(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  mdrr::Rng rng(2);
  std::vector<double> weights(r);
  for (double& w : weights) w = rng.UniformDouble() + 0.01;
  mdrr::AliasSampler sampler(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(300)->Arg(4096);

void BM_DomainCompose(benchmark::State& state) {
  mdrr::Dataset adult = mdrr::SynthesizeAdult(32561, 3);
  std::vector<size_t> attrs = {mdrr::kAdultMaritalStatus,
                               mdrr::kAdultRelationship, mdrr::kAdultSex};
  mdrr::Domain domain = mdrr::Domain::ForAttributes(adult, attrs);
  for (auto _ : state) {
    auto composite = domain.ComposeColumns(adult, attrs);
    benchmark::DoNotOptimize(composite);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 32561);
}
BENCHMARK(BM_DomainCompose);

void BM_EmpiricalDistribution(benchmark::State& state) {
  mdrr::Rng rng(5);
  std::vector<uint32_t> codes(32561);
  for (auto& c : codes) c = static_cast<uint32_t>(rng.UniformInt(300));
  for (auto _ : state) {
    auto dist = mdrr::EmpiricalDistribution(codes, 300);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_EmpiricalDistribution);

void BM_FullRrIndependentOnAdult(benchmark::State& state) {
  mdrr::Dataset adult = mdrr::SynthesizeAdult(32561, 7);
  mdrr::Rng rng(11);
  for (auto _ : state) {
    auto result =
        mdrr::RunRrIndependent(adult, mdrr::RrIndependentOptions{0.7}, rng);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullRrIndependentOnAdult);

}  // namespace

BENCHMARK_MAIN();
