// Minimal drop-in stand-in for <benchmark/benchmark.h>, used when
// libbenchmark-dev is absent so the microbenches (micro_primitives,
// ablation_matrix_inverse) always build and run instead of being skipped.
//
// Implements exactly the subset of the google-benchmark API this repo
// uses: State iteration, range(), iterations(), SetItemsProcessed,
// SetComplexityN, DoNotOptimize, BENCHMARK with ->Arg / ->Range /
// ->RangeMultiplier / ->Complexity, BENCHMARK_MAIN, and a substring
// --benchmark_filter=. Timing is adaptive (each case is rerun with a
// growing iteration count until it accumulates enough wall time for a
// stable per-iteration figure). Numbers from this harness are
// comparable run-to-run on one machine, not to numbers from the real
// library.

#ifndef MDRR_BENCH_COMPAT_BENCHMARK_BENCHMARK_H_
#define MDRR_BENCH_COMPAT_BENCHMARK_BENCHMARK_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace benchmark {

// Accepted and recorded for API compatibility; the fallback harness does
// not fit complexity curves.
enum BigO { oNone, o1, oN, oNSquared, oNCubed, oLogN, oNLogN, oAuto };

class State {
 public:
  State(int64_t iterations, std::vector<int64_t> args)
      : remaining_(iterations), iterations_(iterations),
        args_(std::move(args)) {}

  int64_t range(size_t index = 0) const {
    return index < args_.size() ? args_[index] : 0;
  }
  int64_t iterations() const { return iterations_; }
  void SetItemsProcessed(int64_t items) { items_processed_ = items; }
  void SetComplexityN(int64_t n) { complexity_n_ = n; }

  // Range-for protocol: `for (auto _ : state)` runs iterations() times
  // with the timer spanning first increment to exhaustion.
  struct Iterator {
    State* state;
    bool operator!=(const Iterator&) const { return state->KeepRunning(); }
    Iterator& operator++() { return *this; }
    int operator*() const { return 0; }
  };
  Iterator begin() { return Iterator{this}; }
  Iterator end() { return Iterator{this}; }

  bool KeepRunning() {
    if (!started_) {
      started_ = true;
      start_ = std::chrono::steady_clock::now();
      return remaining_ > 0;
    }
    if (--remaining_ > 0) return true;
    elapsed_seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    return false;
  }

  double elapsed_seconds() const { return elapsed_seconds_; }
  int64_t items_processed() const { return items_processed_; }
  int64_t complexity_n() const { return complexity_n_; }

 private:
  int64_t remaining_;
  int64_t iterations_;
  std::vector<int64_t> args_;
  int64_t items_processed_ = 0;
  int64_t complexity_n_ = 0;
  bool started_ = false;
  double elapsed_seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

#if defined(__GNUC__) || defined(__clang__)
template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}
#else
template <class T>
inline void DoNotOptimize(T const& value) {
  volatile const T* sink = &value;
  (void)sink;
}
#endif

namespace internal {

using Function = void (*)(State&);

class Benchmark {
 public:
  Benchmark(std::string name, Function fn)
      : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(int64_t value) {
    arg_sets_.push_back({value});
    return this;
  }
  Benchmark* RangeMultiplier(int multiplier) {
    range_multiplier_ = multiplier;
    return this;
  }
  Benchmark* Range(int64_t lo, int64_t hi) {
    for (int64_t v = lo; v < hi; v *= range_multiplier_) {
      arg_sets_.push_back({v});
    }
    arg_sets_.push_back({hi});
    return this;
  }
  Benchmark* Complexity(BigO big_o = oAuto) {
    complexity_ = big_o;
    return this;
  }

  const std::string& name() const { return name_; }
  Function fn() const { return fn_; }
  // One run per registered arg set; a bare BENCHMARK gets one argless run.
  std::vector<std::vector<int64_t>> RunSets() const {
    return arg_sets_.empty()
               ? std::vector<std::vector<int64_t>>{{}}
               : arg_sets_;
  }

 private:
  std::string name_;
  Function fn_;
  std::vector<std::vector<int64_t>> arg_sets_;
  int range_multiplier_ = 8;
  BigO complexity_ = oNone;
};

inline std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> registry;
  return registry;
}

inline Benchmark* RegisterBenchmarkInternal(const char* name, Function fn) {
  Registry().push_back(new Benchmark(name, fn));
  return Registry().back();
}

// Reruns one case with a growing iteration count until it accumulates
// `min_time` seconds, then reports the final (longest) run.
inline void RunOne(const Benchmark& bench,
                   const std::vector<int64_t>& args) {
  std::string label = bench.name();
  for (int64_t a : args) label += "/" + std::to_string(a);

  constexpr double kMinTime = 0.2;
  constexpr int64_t kMaxIterations = int64_t{1} << 30;
  int64_t iterations = 1;
  for (;;) {
    State state(iterations, args);
    bench.fn()(state);
    double elapsed = state.elapsed_seconds();
    if (elapsed >= kMinTime || iterations >= kMaxIterations) {
      double per_iter_ns =
          elapsed / static_cast<double>(iterations) * 1e9;
      std::printf("%-48s %13.1f ns %12lld iters", label.c_str(),
                  per_iter_ns, static_cast<long long>(iterations));
      if (state.items_processed() > 0 && elapsed > 0.0) {
        std::printf(" %10.2f M items/s",
                    static_cast<double>(state.items_processed()) / elapsed /
                        1e6);
      }
      std::printf("\n");
      return;
    }
    // Grow towards kMinTime with headroom, at least doubling.
    double scale = elapsed > 0.0 ? kMinTime / elapsed * 1.4 : 10.0;
    if (scale < 2.0) scale = 2.0;
    if (scale > 10.0) scale = 10.0;
    iterations = static_cast<int64_t>(static_cast<double>(iterations) *
                                      scale) +
                 1;
  }
}

inline int RunAllBenchmarks(int argc, char** argv) {
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--benchmark_filter=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      filter = argv[i] + std::strlen(prefix);
    }
  }
  std::printf("# fallback timer harness (libbenchmark not found at "
              "configure time)\n");
  std::printf("%-48s %16s %18s\n", "benchmark", "time/iter", "iterations");
  for (Benchmark* bench : Registry()) {
    if (!filter.empty() &&
        bench->name().find(filter) == std::string::npos) {
      continue;
    }
    for (const std::vector<int64_t>& args : bench->RunSets()) {
      RunOne(*bench, args);
    }
  }
  return 0;
}

}  // namespace internal

}  // namespace benchmark

#define MDRR_BENCH_CONCAT_IMPL(a, b) a##b
#define MDRR_BENCH_CONCAT(a, b) MDRR_BENCH_CONCAT_IMPL(a, b)

#define BENCHMARK(fn)                                             \
  static ::benchmark::internal::Benchmark* MDRR_BENCH_CONCAT(     \
      mdrr_benchmark_registration_, __LINE__) =                   \
      ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                               \
    return ::benchmark::internal::RunAllBenchmarks(argc, argv);   \
  }

#endif  // MDRR_BENCH_COMPAT_BENCHMARK_BENCHMARK_H_
