// Table 2: the Table 1 grid evaluated on Adult6 -- the Adult data set
// concatenated 6 times (Section 6.5), isolating the effect of data set
// size at identical distribution.
//
// Usage: table2_rr_clusters_adult6 [--runs=25] [--seed=1] [--sigma=0.1]
//                                  [--adult_csv=...] [--n=32561]

#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/dependence.h"
#include "mdrr/eval/experiment.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult6 = mdrr::bench::LoadAdult(flags).Tiled(6);

  const int runs = mdrr::bench::RunsFlag(flags);
  const size_t query_attrs = static_cast<size_t>(flags.GetInt("query_attrs", 2));
  const double sigma = flags.GetDouble("sigma", 0.1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Table 2: RR-Clusters relative error on Adult6 (6x concatenation)");
  std::printf("# n = %zu records, %d runs per cell (paper: 1000), sigma=%.2f\n",
              adult6.num_rows(), runs, sigma);

  mdrr::linalg::Matrix dependences = mdrr::DependenceMatrix(adult6);

  const double ps[] = {0.1, 0.3, 0.5, 0.7};
  const double tds[] = {0.1, 0.2, 0.3};
  const double tvs[] = {50, 100, 300};

  std::printf("%5s %5s  %8s %8s %8s\n", "p", "Td", "Tv=50", "Tv=100",
              "Tv=300");
  for (double p : ps) {
    for (double td : tds) {
      std::printf("%5.1f %5.1f ", p, td);
      for (double tv : tvs) {
        mdrr::eval::ExperimentConfig config;
        config.method = mdrr::eval::Method::kRrClusters;
        config.keep_probability = p;
        config.clustering = mdrr::ClusteringOptions{tv, td};
        config.dependences = &dependences;
        config.sigma = sigma;
        config.query_attributes = query_attrs;
        config.runs = runs;
        config.seed = seed;
        auto result = RunCountQueryExperiment(adult6, config);
        if (!result.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(" %8.3f", result.value().median_relative_error);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "# paper shape check: every cell below its Table 1 counterpart; the\n"
      "# largest gains appear at small p / small Tv; at p=0.7 larger Tv\n"
      "# becomes competitive\n");
  return 0;
}
