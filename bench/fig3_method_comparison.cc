// Figure 3: median relative count-query error of the four methods --
// RR-Ind, RR-Ind + RR-Adj, RR-Clusters (best Tv/Td per Table 1),
// RR-Clusters + RR-Adj -- for p in {0.1, 0.3, 0.5, 0.7} (one panel per p)
// and coverage sigma in {0.1 .. 0.9}.
//
// Per the paper, the cluster thresholds are the best Table 1 cells:
// (Tv=50, Td=0.3) for p <= 0.3 and (Tv=50, Td=0.1) for p >= 0.5.
//
// Usage: fig3_method_comparison [--runs=25] [--seed=1] [--adult_csv=...]
//                               [--n=32561] [--adj_iters=30]

#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/dependence.h"
#include "mdrr/eval/experiment.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  const int runs = mdrr::bench::RunsFlag(flags);
  const size_t query_attrs = static_cast<size_t>(flags.GetInt("query_attrs", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int adj_iters = static_cast<int>(flags.GetInt("adj_iters", 30));

  mdrr::bench::PrintHeader(
      "Figure 3: relative error of RR-Ind / RR-Ind+Adj / RR-Cluster / "
      "RR-Cluster+Adj");
  std::printf("# n = %zu records, %d runs per point (paper: 1000)\n",
              adult.num_rows(), runs);

  mdrr::linalg::Matrix dependences = mdrr::DependenceMatrix(adult);

  const mdrr::eval::Method methods[] = {
      mdrr::eval::Method::kRrIndependent,
      mdrr::eval::Method::kRrIndependentAdjusted,
      mdrr::eval::Method::kRrClusters,
      mdrr::eval::Method::kRrClustersAdjusted,
  };
  const double ps[] = {0.1, 0.3, 0.5, 0.7};
  const double sigmas[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};

  for (double p : ps) {
    // Best Table 1 thresholds for this p.
    double td = (p <= 0.3) ? 0.3 : 0.1;
    std::printf("\n--- panel p = %.1f (RR-Cluster with Tv=50, Td=%.1f) ---\n",
                p, td);
    std::printf("%6s  %12s %12s %12s %14s\n", "sigma", "RR-Ind",
                "RR-Ind+Adj", "RR-Cluster", "RR-Cluster+Adj");
    for (double sigma : sigmas) {
      std::printf("%6.1f ", sigma);
      for (mdrr::eval::Method method : methods) {
        mdrr::eval::ExperimentConfig config;
        config.method = method;
        config.keep_probability = p;
        config.clustering = mdrr::ClusteringOptions{50.0, td};
        config.dependences = &dependences;
        config.adjustment.max_iterations = adj_iters;
        config.sigma = sigma;
        config.query_attributes = query_attrs;
        config.runs = runs;
        config.seed = seed;
        auto result = RunCountQueryExperiment(adult, config);
        if (!result.ok()) {
          std::fprintf(stderr, "point failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        bool wide = method == mdrr::eval::Method::kRrClustersAdjusted;
        std::printf(wide ? " %14.4f" : " %12.4f",
                    result.value().median_relative_error);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n# paper shape check: at p<=0.3 RR-Ind is best (clustering and\n"
      "# adjustment counter-productive); at p>=0.5 and sigma<0.3\n"
      "# RR-Cluster (+Adj) wins; all methods converge for sigma>=0.3\n");
  return 0;
}
