// Section 3.3 accuracy analysis: the analytic best-case (even-frequency)
// relative errors of RR-Independent versus RR-Joint as the number of
// attributes grows, on the Adult cardinalities. Demonstrates the
// exponential blow-up that motivates RR-Clusters.
//
// Usage: sec33_accuracy_analysis [--alpha=0.05] [--n=32561]

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/stats/error_bounds.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const double alpha = flags.GetDouble("alpha", 0.05);
  const int64_t n = flags.GetInt("n", 32561);

  mdrr::bench::PrintHeader(
      "Section 3.3: analytic even-frequency relative error, "
      "RR-Independent vs RR-Joint");
  std::printf("# alpha = %.3f, n = %lld\n", alpha, static_cast<long long>(n));

  // Adult cardinalities in the paper's order.
  const std::vector<int64_t> adult_cards = {9, 16, 7, 15, 6, 5, 2, 2};
  const char* names[] = {"Work-class", "Education",  "Marital-status",
                         "Occupation", "Relationship", "Race",
                         "Sex",        "Income"};

  std::printf("%3s %-16s %10s  %14s %14s\n", "m", "added attribute",
              "product", "e_rel(RR-Ind)", "e_rel(RR-Joint)");
  std::vector<int64_t> prefix;
  double product = 1.0;
  for (size_t m = 0; m < adult_cards.size(); ++m) {
    prefix.push_back(adult_cards[m]);
    product *= static_cast<double>(adult_cards[m]);
    double independent =
        mdrr::stats::RrIndependentEvenRelativeError(prefix, n, alpha);
    double joint = mdrr::stats::RrJointEvenRelativeError(prefix, n, alpha);
    std::printf("%3zu %-16s %10.0f  %14.4f %14.4f\n", m + 1, names[m],
                product, independent, joint);
  }
  std::printf(
      "# paper shape check: RR-Ind stays ~constant (worst attribute);\n"
      "# RR-Joint grows ~sqrt(product) and is useless beyond 3-4 attrs\n");

  // The Bound (7) / Figure 1 discussion: at n = r even the best case has
  // sqrt(B) relative error (>200%).
  std::printf("\n# bound (7) illustration: n = r (even frequencies)\n");
  std::printf("%10s %12s\n", "r = n", "e_rel");
  for (int64_t r : {100, 1000, 10000, 100000}) {
    std::printf("%10lld %12.4f\n", static_cast<long long>(r),
                mdrr::stats::EvenFrequencyRelativeError(
                    static_cast<double>(r), r, alpha));
  }
  return 0;
}
