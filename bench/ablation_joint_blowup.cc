// Ablation A1-empirical: the curse of dimensionality of Protocol 2
// (RR-Joint) measured rather than analytic -- total-variation distance
// between the estimated and true joint distribution of growing attribute
// prefixes of Adult, alongside the Section 3.3 analytic prediction.
//
// The total privacy budget is held FIXED across m (default eps_total = 4):
// under the Section 6.3.2 equivalent-risk calibration the budget would
// grow with every added attribute and mask the curse. A second column
// shows the growing-budget (per-attribute p) variant for contrast.
//
// Usage: ablation_joint_blowup [--eps_total=4] [--p=0.7] [--max_attrs=5]
//                              [--n=32561] [--seed=1]

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/rr_joint.h"
#include "mdrr/dataset/domain.h"
#include "mdrr/rng/rng.h"
#include "mdrr/stats/error_bounds.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  const double eps_total = flags.GetDouble("eps_total", 4.0);
  const double p = flags.GetDouble("p", 0.7);
  const int64_t max_attrs = flags.GetInt("max_attrs", 5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Ablation: empirical RR-Joint blow-up with attribute count");
  std::printf(
      "# n = %zu; fixed total budget eps=%.1f vs growing per-attribute "
      "budget (p=%.1f)\n",
      adult.num_rows(), eps_total, p);
  std::printf("%3s %10s  %14s %14s  %14s\n", "m", "domain",
              "TV (fixed eps)", "TV (grow eps)", "Sec3.3 e_rel");

  mdrr::Rng rng(seed);

  auto tv_distance = [&](const std::vector<size_t>& attrs, double budget) {
    auto joint = mdrr::RunRrJoint(adult, attrs, budget, rng);
    if (!joint.ok()) return -1.0;
    std::vector<uint32_t> true_codes =
        joint.value().domain.ComposeColumns(adult, attrs);
    std::vector<double> truth(joint.value().domain.size(), 0.0);
    for (uint32_t code : true_codes) {
      truth[code] += 1.0 / static_cast<double>(adult.num_rows());
    }
    double tv = 0.0;
    for (size_t k = 0; k < truth.size(); ++k) {
      tv += std::fabs(joint.value().estimated[k] - truth[k]);
    }
    return tv / 2.0;
  };

  std::vector<size_t> attrs;
  std::vector<int64_t> cards;
  for (size_t j = 0; j < adult.num_attributes() &&
                     j < static_cast<size_t>(max_attrs);
       ++j) {
    attrs.push_back(j);
    cards.push_back(static_cast<int64_t>(adult.attribute(j).cardinality()));
    mdrr::Domain domain = mdrr::Domain::ForAttributes(adult, attrs);

    double tv_fixed = tv_distance(attrs, eps_total);
    double tv_grow =
        tv_distance(attrs, mdrr::ClusterEpsilonBudget(adult, attrs, p));
    double analytic = mdrr::stats::RrJointEvenRelativeError(
        cards, static_cast<int64_t>(adult.num_rows()), 0.05);
    std::printf("%3zu %10llu  %14.4f %14.4f  %14.3f\n", attrs.size(),
                static_cast<unsigned long long>(domain.size()), tv_fixed,
                tv_grow, analytic);
  }
  std::printf(
      "# shape check: at fixed total epsilon the TV distance degrades\n"
      "# toward 1 as the domain outgrows n (Bound (7)); under the growing\n"
      "# Section 6.3.2 budget the extra epsilon masks the curse\n");
  return 0;
}
