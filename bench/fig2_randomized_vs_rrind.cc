// Figure 2: absolute (left panel) and relative (right panel) count-query
// error of the raw "Randomized" data versus RR-Independent (Eq. (2)
// estimation) at p = 0.7, as a function of domain coverage sigma.
//
// Usage: fig2_randomized_vs_rrind [--runs=25] [--p=0.7] [--seed=1]
//                                 [--adult_csv=...] [--n=32561]

#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/eval/experiment.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  const int runs = mdrr::bench::RunsFlag(flags);
  const size_t query_attrs = static_cast<size_t>(flags.GetInt("query_attrs", 2));
  const double p = flags.GetDouble("p", 0.7);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Figure 2: Randomized vs RR-Independent count-query error (p = 0.7)");
  std::printf("# n = %zu records, %d runs per point (paper: 1000)\n",
              adult.num_rows(), runs);
  std::printf("%6s  %14s %14s  %12s %12s\n", "sigma", "abs(Randomized)",
              "abs(RR-Ind)", "rel(Randomized)", "rel(RR-Ind)");

  const double sigmas[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  for (double sigma : sigmas) {
    mdrr::eval::ExperimentConfig config;
    config.keep_probability = p;
    config.sigma = sigma;
    config.query_attributes = query_attrs;
    config.runs = runs;
    config.seed = seed;

    config.method = mdrr::eval::Method::kRandomized;
    auto randomized = RunCountQueryExperiment(adult, config);
    config.method = mdrr::eval::Method::kRrIndependent;
    auto rr_ind = RunCountQueryExperiment(adult, config);
    if (!randomized.ok() || !rr_ind.ok()) {
      std::fprintf(stderr, "experiment failed: %s / %s\n",
                   randomized.status().ToString().c_str(),
                   rr_ind.status().ToString().c_str());
      return 1;
    }
    std::printf("%6.1f  %14.1f %14.1f  %12.4f %12.4f\n", sigma,
                randomized.value().median_absolute_error,
                rr_ind.value().median_absolute_error,
                randomized.value().median_relative_error,
                rr_ind.value().median_relative_error);
  }
  std::printf(
      "# paper shape check: RR-Ind errors well below Randomized; absolute\n"
      "# error peaks near sigma=0.5; relative error decreases with sigma\n");
  return 0;
}
