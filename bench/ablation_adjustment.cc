// Ablation A3: the termination-criterion trade-off of Algorithm 2
// (Section 5 notes strict convergence vs a threshold vs a fixed number of
// iterations are all valid). Reports, per iteration budget, the residual
// marginal gap and the count-query error of RR-Ind + RR-Adj on Adult.
//
// Usage: ablation_adjustment [--runs=15] [--p=0.7] [--sigma=0.1]
//                            [--seed=1] [--n=32561]

#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/rr_independent.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/rng/rng.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  const int runs = mdrr::bench::RunsFlag(flags, 15);
  const double p = flags.GetDouble("p", 0.7);
  const double sigma = flags.GetDouble("sigma", 0.1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Ablation: RR-Adjustment iteration budget (Algorithm 2 termination)");
  std::printf("# n = %zu, p = %.1f, sigma = %.1f, %d runs per row\n",
              adult.num_rows(), p, sigma, runs);

  // Residual marginal gap on one fixed protocol execution.
  mdrr::Rng rng(seed);
  auto rr = mdrr::RunRrIndependent(adult, mdrr::RrIndependentOptions{p}, rng);
  if (!rr.ok()) {
    std::fprintf(stderr, "protocol failed: %s\n",
                 rr.status().ToString().c_str());
    return 1;
  }
  std::vector<mdrr::AdjustmentGroup> groups =
      mdrr::GroupsFromIndependent(*rr);

  std::printf("%8s  %14s  %12s  %10s\n", "iters", "marginal gap",
              "rel error", "converged");
  for (int iters : {1, 2, 5, 10, 20, 50, 100}) {
    mdrr::AdjustmentOptions options;
    options.max_iterations = iters;
    options.tolerance = 1e-12;
    auto adjustment =
        mdrr::RunRrAdjustment(groups, adult.num_rows(), options);
    if (!adjustment.ok()) {
      std::fprintf(stderr, "adjustment failed: %s\n",
                   adjustment.status().ToString().c_str());
      return 1;
    }

    mdrr::eval::ExperimentConfig config;
    config.method = mdrr::eval::Method::kRrIndependentAdjusted;
    config.keep_probability = p;
    config.adjustment.max_iterations = iters;
    config.sigma = sigma;
    config.runs = runs;
    config.seed = seed;
    auto experiment = RunCountQueryExperiment(adult, config);
    if (!experiment.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   experiment.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d  %14.3e  %12.4f  %10s\n", iters,
                adjustment.value().max_marginal_gap,
                experiment.value().median_relative_error,
                adjustment.value().converged ? "yes" : "no");
  }
  std::printf(
      "# shape check: the marginal gap collapses within a few sweeps;\n"
      "# query error saturates long before strict convergence\n");
  return 0;
}
