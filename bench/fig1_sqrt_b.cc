// Figure 1: evolution of sqrt(B) (the factor in the absolute error of
// lambda-hat, Definition 1) as a function of the number of categories r,
// at confidence alpha = 0.05. B is the (alpha/r) upper percentile of the
// chi-squared distribution with 1 degree of freedom.
//
// Usage: fig1_sqrt_b [--alpha=0.05] [--max_r=100000]

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/stats/error_bounds.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  double alpha = flags.GetDouble("alpha", 0.05);
  int64_t max_r = flags.GetInt("max_r", 100000);

  mdrr::bench::PrintHeader("Figure 1: sqrt(B) vs number of categories r");
  std::printf("# alpha = %.3f; B = chi2_1 upper (alpha/r) percentile\n",
              alpha);
  std::printf("%10s  %10s\n", "r", "sqrt(B)");

  std::vector<int64_t> grid = {2,    5,     10,    20,    50,    100,
                               200,  500,   1000,  2000,  5000,  10000,
                               20000, 40000, 60000, 80000};
  grid.push_back(max_r);
  for (int64_t r : grid) {
    if (r > max_r) continue;
    std::printf("%10lld  %10.4f\n", static_cast<long long>(r),
                mdrr::stats::SqrtB(alpha, static_cast<double>(r)));
  }
  std::printf(
      "# paper shape check: rises from ~2.2 (r=2) toward ~5 at r=1e5\n");
  return 0;
}
