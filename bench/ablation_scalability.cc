// Ablation: scalability of the full RR-Clusters pipeline in the number
// of attributes, on a 23-attribute Mushroom-style data set. For growing
// attribute prefixes: wall time of the full protocol (dependences +
// clustering + cluster-wise RR + estimation), resulting cluster count,
// and count-query accuracy -- the high-dimensional regime the paper's
// title is about.
//
// Usage: ablation_scalability [--runs=10] [--p=0.7] [--tv=60] [--td=0.1]
//                             [--n=8124] [--seed=1]

#include <chrono>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/dependence.h"
#include "mdrr/dataset/mushroom.h"
#include "mdrr/eval/experiment.h"
#include "mdrr/rng/rng.h"

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n =
      static_cast<size_t>(flags.GetInt("n", mdrr::kMushroomNumRecords));
  const double p = flags.GetDouble("p", 0.7);
  const double tv = flags.GetDouble("tv", 60.0);
  const double td = flags.GetDouble("td", 0.1);
  const int runs = mdrr::bench::RunsFlag(flags, 10);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::Dataset mushroom = mdrr::SynthesizeMushroom(n, seed);
  mdrr::bench::PrintHeader(
      "Ablation: RR-Clusters scalability in the number of attributes "
      "(Mushroom-style, 23 attrs)");
  std::printf("# n = %zu, p = %.1f, Tv = %.0f, Td = %.1f, %d runs/point\n",
              n, p, tv, td, runs);
  std::printf("%4s %10s %10s %12s %14s\n", "m", "domain", "clusters",
              "rel error", "protocol ms");

  for (size_t m : {4u, 8u, 12u, 16u, 20u, 23u}) {
    std::vector<size_t> prefix(m);
    std::iota(prefix.begin(), prefix.end(), 0);
    mdrr::Dataset subset = mushroom.Project(prefix);

    double domain = 1.0;
    for (int64_t c : subset.Cardinalities()) {
      domain *= static_cast<double>(c);
    }

    // One timed full protocol execution (including in-protocol
    // dependence assessment, as deployed).
    mdrr::RrClustersOptions options;
    options.keep_probability = p;
    options.clustering = mdrr::ClusteringOptions{tv, td};
    options.dependence_source =
        mdrr::DependenceSource::kRandomizedResponse;
    mdrr::Rng rng(seed + m);
    auto start = std::chrono::steady_clock::now();
    auto protocol = mdrr::RunRrClusters(subset, options, rng);
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!protocol.ok()) {
      std::printf("%4zu  -- %s\n", m, protocol.status().ToString().c_str());
      continue;
    }

    // Accuracy over the usual sigma = 0.1 pair queries.
    mdrr::eval::ExperimentConfig config;
    config.method = mdrr::eval::Method::kRrClusters;
    config.keep_probability = p;
    config.clustering = options.clustering;
    config.sigma = 0.1;
    config.runs = runs;
    config.seed = seed;
    auto experiment = RunCountQueryExperiment(subset, config);
    if (!experiment.ok()) {
      std::printf("%4zu  -- %s\n", m,
                  experiment.status().ToString().c_str());
      continue;
    }

    std::printf("%4zu %10.3g %10zu %12.4f %14.1f\n", m, domain,
                protocol.value().clusters.size(),
                experiment.value().median_relative_error,
                static_cast<double>(elapsed) / 1000.0);
  }
  std::printf(
      "# shape check: the joint domain explodes (~1e16 at m=23) while\n"
      "# protocol time stays linear-ish in m and error stays bounded --\n"
      "# the entire point of clustering over RR-Joint\n");
  return 0;
}
