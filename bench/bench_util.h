// Shared helpers for the experiment benches: dataset acquisition (real
// adult.data if --adult_csv points at one, the calibrated synthesizer
// otherwise) and uniform table formatting.

#ifndef MDRR_BENCH_BENCH_UTIL_H_
#define MDRR_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "mdrr/common/flags.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/dataset/dataset.h"

namespace mdrr::bench {

// Resolves the evaluation dataset. Flags:
//   --adult_csv=PATH  load a real UCI adult.data file;
//   --n=N             synthetic record count (default 32561);
//   --data_seed=S     synthesizer seed (default 2020).
inline Dataset LoadAdult(const FlagSet& flags) {
  std::string path = flags.GetString("adult_csv", "");
  if (!path.empty()) {
    auto loaded = LoadAdultCsv(path);
    if (loaded.ok()) {
      std::fprintf(stderr, "# loaded %zu records from %s\n",
                   loaded.value().num_rows(), path.c_str());
      return std::move(loaded).value();
    }
    std::fprintf(stderr, "# failed to load %s (%s); falling back to synth\n",
                 path.c_str(), loaded.status().ToString().c_str());
  }
  size_t n = static_cast<size_t>(
      flags.GetInt("n", static_cast<int64_t>(kAdultNumRecords)));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("data_seed", 2020));
  return SynthesizeAdult(n, seed);
}

// Paper default is 1000 runs; benches default lower for CI speed.
inline int RunsFlag(const FlagSet& flags, int default_runs = 25) {
  return static_cast<int>(flags.GetInt("runs", default_runs));
}

inline void PrintHeader(const char* title) {
  std::printf("=== %s ===\n", title);
}

// Wall-clock stopwatch for coarse pipeline timings (the google-benchmark
// microbenches handle the fine-grained ones).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mdrr::bench

#endif  // MDRR_BENCH_BENCH_UTIL_H_
