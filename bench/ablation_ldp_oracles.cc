// Ablation: the LDP frequency-oracle family of the paper's related work
// (Wang et al. [29], RAPPOR [12]) against the paper's own direct-encoding
// matrix, at equal epsilon -- empirical MSE of frequency estimates across
// domain sizes. Shows the DE/OUE crossover in r and what the
// microdata-capable mechanism costs relative to frequency-only protocols.
//
// Usage: ablation_ldp_oracles [--eps=1.0] [--n=20000] [--reps=40]
//                             [--seed=1]

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/frequency_oracle.h"
#include "mdrr/rng/rng.h"

namespace {

// Empirical mean-squared error of the first category's estimate.
template <typename EstimateFn>
double EmpiricalMse(EstimateFn estimate_once, const std::vector<double>& pi,
                    int reps) {
  double mse = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    double err = estimate_once(rep) - pi[0];
    mse += err * err;
  }
  return mse / reps;
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const double eps = flags.GetDouble("eps", 1.0);
  const int n = static_cast<int>(flags.GetInt("n", 20000));
  const int reps = static_cast<int>(flags.GetInt("reps", 40));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(
      "Ablation: LDP frequency oracles (DE vs SUE vs OUE) at equal "
      "epsilon");
  std::printf("# eps = %.2f, n = %d respondents, %d replications\n", eps, n,
              reps);
  std::printf("%6s  %12s %12s %12s   %12s %12s\n", "r", "MSE(DE)",
              "MSE(SUE)", "MSE(OUE)", "theory DE", "theory OUE");

  for (size_t r : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    // A skewed distribution: pi_0 = 0.5, rest uniform.
    std::vector<double> pi(r, 0.5 / static_cast<double>(r - 1));
    pi[0] = 0.5;

    mdrr::DirectEncodingOracle de(r, eps);
    mdrr::UnaryEncodingOracle sue(
        r, eps, mdrr::UnaryEncodingOracle::Variant::kSymmetric);
    mdrr::UnaryEncodingOracle oue(
        r, eps, mdrr::UnaryEncodingOracle::Variant::kOptimized);

    mdrr::Rng rng(seed + r);
    auto de_once = [&](int) {
      std::vector<uint32_t> reports(n);
      for (int i = 0; i < n; ++i) {
        reports[i] =
            de.Randomize(static_cast<uint32_t>(rng.Discrete(pi)), rng);
      }
      return de.EstimateFrequencies(reports).value()[0];
    };
    auto unary_once = [&](const mdrr::UnaryEncodingOracle& oracle) {
      std::vector<int64_t> bit_counts(r, 0);
      for (int i = 0; i < n; ++i) {
        std::vector<uint8_t> report = oracle.Randomize(
            static_cast<uint32_t>(rng.Discrete(pi)), rng);
        for (size_t v = 0; v < r; ++v) bit_counts[v] += report[v];
      }
      return oracle.EstimateFrequencies(bit_counts, n).value()[0];
    };

    double mse_de = EmpiricalMse(de_once, pi, reps);
    double mse_sue = EmpiricalMse(
        [&](int) { return unary_once(sue); }, pi, reps);
    double mse_oue = EmpiricalMse(
        [&](int) { return unary_once(oue); }, pi, reps);

    std::printf("%6zu  %12.3e %12.3e %12.3e   %12.3e %12.3e\n", r, mse_de,
                mse_sue, mse_oue, de.TheoreticalVariance(pi[0], n),
                oue.TheoreticalVariance(pi[0], n));
  }
  std::printf(
      "# shape check: DE wins for small r, OUE for large r (its variance\n"
      "# is independent of r); OUE always beats SUE; empirical matches\n"
      "# theory columns\n");
  return 0;
}
