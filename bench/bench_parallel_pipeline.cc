// Batch pipeline scaling: BatchPerturbationEngine at 1 thread vs N
// threads on a large synthetic Adult workload, for RR-Independent and
// RR-Clusters. The engine's sharding contract makes the two runs
// bit-identical, so the bench both measures the speedup and verifies the
// determinism claim on every invocation.
//
// Flags:
//   --n=N         records (default 1000000)
//   --threads=T   parallel thread count to compare against 1 (default 4)
//   --shard=S     records per shard (default 65536)
//   --p=P         keep probability (default 0.7)
//   --seed=S      engine seed (default 1)
//   --data_seed=S synthetic-workload seed, independent of --seed
//                 (default 2020)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/dataset/adult.h"

namespace {

using mdrr::BatchPerturbationEngine;
using mdrr::BatchPerturbationOptions;
using mdrr::Dataset;

bool SameEstimates(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j] != b[j]) return false;
  }
  return true;
}

bool SameData(const Dataset& a, const Dataset& b) {
  if (a.num_rows() != b.num_rows() ||
      a.num_attributes() != b.num_attributes()) {
    return false;
  }
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

BatchPerturbationEngine MakeEngine(const mdrr::FlagSet& flags,
                                   size_t threads) {
  BatchPerturbationOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.num_threads = threads;
  options.shard_size = static_cast<size_t>(flags.GetInt("shard", 1 << 16));
  return BatchPerturbationEngine(options);
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);

  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const double p = flags.GetDouble("p", 0.7);
  const uint64_t data_seed =
      static_cast<uint64_t>(flags.GetInt("data_seed", 2020));

  mdrr::bench::PrintHeader("parallel batch pipeline");
  std::printf("# synthesizing %zu Adult records...\n", n);
  Dataset data = mdrr::SynthesizeAdult(n, data_seed);

  BatchPerturbationEngine single = MakeEngine(flags, 1);
  BatchPerturbationEngine parallel = MakeEngine(flags, threads);
  std::printf("# shards: %zu (shard_size %zu)\n", single.NumShards(n),
              single.options().shard_size);

  mdrr::RrIndependentOptions independent_options{p};
  mdrr::RrClustersOptions clusters_options;
  clusters_options.keep_probability = p;
  clusters_options.dependence_source = mdrr::DependenceSource::kOracle;

  std::printf("%-16s %10s %10s %9s %12s\n", "protocol", "t1 (s)",
              "tN (s)", "speedup", "identical");
  int failures = 0;

  {
    mdrr::bench::WallTimer timer;
    auto one = single.RunIndependent(data, independent_options);
    double t1 = timer.Seconds();
    timer.Restart();
    auto many = parallel.RunIndependent(data, independent_options);
    double tn = timer.Seconds();
    if (!one.ok() || !many.ok()) {
      std::fprintf(stderr, "RR-Independent failed\n");
      return 1;
    }
    bool same = SameEstimates(one.value().estimated, many.value().estimated) &&
                SameData(one.value().randomized, many.value().randomized);
    if (!same) ++failures;
    std::printf("%-16s %10.3f %10.3f %8.2fx %12s\n", "RR-Independent", t1,
                tn, t1 / tn, same ? "yes" : "NO");
  }

  {
    mdrr::bench::WallTimer timer;
    auto one = single.RunClusters(data, clusters_options);
    double t1 = timer.Seconds();
    timer.Restart();
    auto many = parallel.RunClusters(data, clusters_options);
    double tn = timer.Seconds();
    if (!one.ok() || !many.ok()) {
      std::fprintf(stderr, "RR-Clusters failed\n");
      return 1;
    }
    bool same = SameData(one.value().randomized, many.value().randomized) &&
                one.value().release_epsilon == many.value().release_epsilon;
    for (size_t c = 0; same && c < one.value().cluster_results.size(); ++c) {
      same = one.value().cluster_results[c].estimated ==
             many.value().cluster_results[c].estimated;
    }
    if (!same) ++failures;
    std::printf("%-16s %10.3f %10.3f %8.2fx %12s\n", "RR-Clusters", t1, tn,
                t1 / tn, same ? "yes" : "NO");
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d protocol(s) were not bit-identical across "
                 "thread counts\n",
                 failures);
    return 1;
  }
  return 0;
}
