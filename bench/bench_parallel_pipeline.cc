// Full-pipeline scaling: every sharded stage of a release -- perturbation
// (RR-Independent, RR-Clusters), dependence assessment, Algorithm 2
// adjustment, synthetic release, and the party-level session -- at 1
// thread vs N threads on a large synthetic Adult workload. The sharding
// contracts make each pair of runs bit-identical, so the bench both
// measures the speedup and verifies the determinism claim on every
// invocation (exit 1 on any mismatch).
//
// Flags:
//   --n=N          records (default 1000000)
//   --threads=T    parallel thread count to compare against 1 (default 4)
//   --shard=S      records per shard (default 65536)
//   --p=P          keep probability (default 0.7)
//   --seed=S       engine seed (default 1)
//   --data_seed=S  synthetic-workload seed, independent of --seed
//                  (default 2020)
//   --session_n=N  parties in the session stage (default min(n, 100000);
//                  each simulated party carries its own mt19937_64, so
//                  the session stage is memory-bound in parties)
//   --est_r=R      joint-domain cardinality of the estimation stages
//                  (default 512)
//   --json_out=F   write the stage table as JSON (BENCH_pipeline.json
//                  baseline format)
//
// The rng-policy stage reads differently from every other row: its two
// columns are the two RNG policies at the SAME thread count (t1 =
// mt19937, tN = philox), so "speedup" is philox's throughput win over
// the sequential-stream mt19937 engine rather than a thread-scaling
// ratio. Its identical bit asserts each policy's own determinism
// contract -- mt19937 across thread counts, philox across thread counts
// AND shard grains -- plus that the two policies produce different
// transcripts (they are distinct generators, not aliases).
//
// The two estimate-joint stages exercise the Eq. (2) fast estimation
// backend at high cardinality: the structured stage additionally asserts
// (via linalg::LuFactorizationCount) that the O(r) closed-form path
// triggers NO LU factorization, and the dense stage asserts the blocked
// parallel LU + SolveTransposeMany output is bit-identical across thread
// counts.
//
// The session runs twice: protocol-session is the batched fast path at 1
// vs N threads, and session-batched compares the per-party reference
// loop against the batched sweep (both sequential), asserting their
// transcripts bit-equal on every run -- the fast path's golden contract.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/adjustment.h"
#include "mdrr/core/batch_engine.h"
#include "mdrr/core/dependence.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/core/synthetic.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/net/coordinator.h"
#include "mdrr/net/worker.h"
#include "mdrr/protocol/session.h"
#include "mdrr/protocol/stream_ingest.h"
#include "mdrr/release/planner.h"
#include "mdrr/release/serialization.h"
#include "mdrr/rng/counter_rng.h"
#include "mdrr/rng/rng.h"

namespace {

using mdrr::BatchPerturbationEngine;
using mdrr::BatchPerturbationOptions;
using mdrr::Dataset;

struct StageResult {
  std::string name;
  double t1 = 0.0;
  double tn = 0.0;
  bool identical = false;
};

bool SameEstimates(const std::vector<std::vector<double>>& a,
                   const std::vector<std::vector<double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j] != b[j]) return false;
  }
  return true;
}

bool SameData(const Dataset& a, const Dataset& b) {
  if (a.num_rows() != b.num_rows() ||
      a.num_attributes() != b.num_attributes()) {
    return false;
  }
  for (size_t j = 0; j < a.num_attributes(); ++j) {
    if (a.column(j) != b.column(j)) return false;
  }
  return true;
}

bool SameMatrix(const mdrr::linalg::Matrix& a, const mdrr::linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

BatchPerturbationEngine MakeEngine(const mdrr::FlagSet& flags, size_t threads,
                                   mdrr::RngKind rng =
                                       mdrr::RngKind::kMt19937) {
  BatchPerturbationOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.num_threads = threads;
  options.shard_size = static_cast<size_t>(flags.GetInt("shard", 1 << 16));
  options.rng = rng;
  return BatchPerturbationEngine(options);
}

void PrintStage(const StageResult& stage) {
  std::printf("%-22s %10.3f %10.3f %8.2fx %12s\n", stage.name.c_str(),
              stage.t1, stage.tn, stage.tn > 0.0 ? stage.t1 / stage.tn : 0.0,
              stage.identical ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);

  const size_t n = static_cast<size_t>(flags.GetInt("n", 1000000));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 4));
  const double p = flags.GetDouble("p", 0.7);
  const uint64_t data_seed =
      static_cast<uint64_t>(flags.GetInt("data_seed", 2020));
  const size_t session_n = static_cast<size_t>(flags.GetInt(
      "session_n", static_cast<int64_t>(std::min<size_t>(n, 100000))));

  mdrr::bench::PrintHeader("parallel release pipeline");
  std::printf("# synthesizing %zu Adult records...\n", n);
  Dataset data = mdrr::SynthesizeAdult(n, data_seed);

  BatchPerturbationEngine single = MakeEngine(flags, 1);
  BatchPerturbationEngine parallel = MakeEngine(flags, threads);
  std::printf("# shards: %zu (shard_size %zu)\n", single.NumShards(n),
              single.options().shard_size);

  mdrr::RrIndependentOptions independent_options{p};
  mdrr::RrClustersOptions clusters_options;
  clusters_options.keep_probability = p;
  clusters_options.dependence_source = mdrr::DependenceSource::kOracle;

  std::printf("%-22s %10s %10s %9s %12s\n", "stage", "t1 (s)", "tN (s)",
              "speedup", "identical");
  std::vector<StageResult> stages;
  mdrr::bench::WallTimer timer;

  // --- RR-Independent perturbation. ---
  timer.Restart();
  auto independent_one = single.RunIndependent(data, independent_options);
  double independent_t1 = timer.Seconds();
  timer.Restart();
  auto independent_many = parallel.RunIndependent(data, independent_options);
  double independent_tn = timer.Seconds();
  if (!independent_one.ok() || !independent_many.ok()) {
    std::fprintf(stderr, "RR-Independent failed\n");
    return 1;
  }
  stages.push_back(
      {"RR-Independent", independent_t1, independent_tn,
       SameEstimates(independent_one.value().estimated,
                     independent_many.value().estimated) &&
           SameData(independent_one.value().randomized,
                    independent_many.value().randomized)});
  PrintStage(stages.back());

  // --- RNG policy: the same RR-Independent workload under the mt19937
  // engine vs the counter-based philox backend. Both columns run at
  // --threads threads, so the ratio is the policy's throughput win, not
  // thread scaling (t1 = mt19937, reused from the stage above; tN =
  // philox). The identical bit covers philox's full determinism
  // contract: thread-count invariance, shard-grain invariance (the
  // draws are element-addressed, so resharding must not move a single
  // output), and divergence from the mt19937 transcript. ---
  BatchPerturbationEngine philox_single =
      MakeEngine(flags, 1, mdrr::RngKind::kPhilox);
  BatchPerturbationEngine philox_parallel =
      MakeEngine(flags, threads, mdrr::RngKind::kPhilox);
  auto philox_one = philox_single.RunIndependent(data, independent_options);
  timer.Restart();
  auto philox_many =
      philox_parallel.RunIndependent(data, independent_options);
  double philox_tn = timer.Seconds();
  BatchPerturbationOptions regrain_options = philox_parallel.options();
  regrain_options.shard_size =
      std::max<size_t>(1, regrain_options.shard_size / 2) + 1;
  auto philox_regrain = BatchPerturbationEngine(regrain_options)
                            .RunIndependent(data, independent_options);
  if (!philox_one.ok() || !philox_many.ok() || !philox_regrain.ok()) {
    std::fprintf(stderr, "philox RR-Independent failed\n");
    return 1;
  }
  bool philox_same =
      SameData(philox_one.value().randomized,
               philox_many.value().randomized) &&
      SameEstimates(philox_one.value().estimated,
                    philox_many.value().estimated) &&
      SameData(philox_many.value().randomized,
               philox_regrain.value().randomized) &&
      !SameData(philox_one.value().randomized,
                independent_one.value().randomized);
  stages.push_back({"rng-policy", independent_tn, philox_tn, philox_same});
  PrintStage(stages.back());

  // --- Frequency-oracle backends: DE vs OUE vs OLH at equal epsilon.
  // Every backend fans every attribute through the engine's RunOracle at
  // the per-attribute epsilon the RR design spends, so the columns
  // compare encodings at equal privacy budget. t1 = DE (the default RR
  // path through the oracle seam), tN = OLH, so the "speedup" column is
  // DE's throughput advantage over local hashing rather than thread
  // scaling; OUE's time prints as a comment line. The identical bit
  // asserts every backend's cross-thread determinism (support counts at
  // 1 thread == counts at --threads) plus that the three backends
  // produce three distinct count transcripts. ---
  auto run_backend = [&](mdrr::OracleBackend backend,
                         const BatchPerturbationEngine& engine)
      -> mdrr::StatusOr<std::vector<std::vector<int64_t>>> {
    std::vector<std::vector<int64_t>> counts;
    for (size_t j = 0; j < data.num_attributes(); ++j) {
      const size_t r = data.attribute(j).cardinality();
      const double eps =
          mdrr::MakeIndependentMatrix(r, independent_options).Epsilon();
      MDRR_ASSIGN_OR_RETURN(std::unique_ptr<mdrr::FrequencyOracle> oracle,
                            mdrr::MakeFrequencyOracle(backend, r, eps));
      counts.push_back(engine.RunOracle(*oracle, data.column(j), j).counts);
    }
    return counts;
  };
  timer.Restart();
  auto oracle_de = run_backend(mdrr::OracleBackend::kDirect, parallel);
  double oracle_de_t = timer.Seconds();
  timer.Restart();
  auto oracle_oue = run_backend(mdrr::OracleBackend::kOptimizedUnary,
                                parallel);
  double oracle_oue_t = timer.Seconds();
  timer.Restart();
  auto oracle_olh = run_backend(mdrr::OracleBackend::kLocalHashing, parallel);
  double oracle_olh_t = timer.Seconds();
  auto oracle_de_one = run_backend(mdrr::OracleBackend::kDirect, single);
  auto oracle_oue_one = run_backend(mdrr::OracleBackend::kOptimizedUnary,
                                    single);
  auto oracle_olh_one = run_backend(mdrr::OracleBackend::kLocalHashing,
                                    single);
  if (!oracle_de.ok() || !oracle_oue.ok() || !oracle_olh.ok() ||
      !oracle_de_one.ok() || !oracle_oue_one.ok() || !oracle_olh_one.ok()) {
    std::fprintf(stderr, "oracle-backends failed\n");
    return 1;
  }
  bool oracle_same = oracle_de.value() == oracle_de_one.value() &&
                     oracle_oue.value() == oracle_oue_one.value() &&
                     oracle_olh.value() == oracle_olh_one.value() &&
                     oracle_de.value() != oracle_oue.value() &&
                     oracle_de.value() != oracle_olh.value() &&
                     oracle_oue.value() != oracle_olh.value();
  std::printf("# oracle-backends: oue tN=%.3fs\n", oracle_oue_t);
  stages.push_back({"oracle-backends", oracle_de_t, oracle_olh_t,
                    oracle_same});
  PrintStage(stages.back());

  // --- Dependence assessment (Corollary 1 pairwise statistics). ---
  mdrr::DependenceShardingOptions dependence_one;
  dependence_one.num_threads = 1;
  mdrr::DependenceShardingOptions dependence_many;
  dependence_many.num_threads = threads;
  timer.Restart();
  mdrr::linalg::Matrix deps_one = mdrr::DependenceMatrixSharded(
      data, mdrr::DependenceMeasure::kPaperAuto, dependence_one);
  double dependence_t1 = timer.Seconds();
  timer.Restart();
  mdrr::linalg::Matrix deps_many = mdrr::DependenceMatrixSharded(
      data, mdrr::DependenceMeasure::kPaperAuto, dependence_many);
  double dependence_tn = timer.Seconds();
  stages.push_back({"dependence-assess", dependence_t1, dependence_tn,
                    SameMatrix(deps_one, deps_many)});
  PrintStage(stages.back());

  // --- Privacy-preserving dependence estimators (Sections 4.2/4.3):
  // stream-per-pair secure sums + pairwise-RR masking, the last
  // previously-sequential stages. t1/tN time the mt19937 pairwise-RR
  // estimator at 1 vs --threads workers; the identical bit asserts the
  // full addressing contract on every run -- both estimators bit-equal
  // across thread counts under both RNG policies, philox additionally
  // across shard grains, and the two policies producing distinct
  // pairwise-RR transcripts. ---
  const uint64_t dep_seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  auto estimator_options = [&](mdrr::RngKind rng_kind, size_t est_threads,
                               size_t grain) {
    mdrr::DependenceEstimatorOptions options;
    options.rng = rng_kind;
    options.sharding.num_threads = est_threads;
    options.sharding.record_chunk_size = grain;
    return options;
  };
  const size_t dep_grain = single.options().shard_size;
  timer.Restart();
  auto pairwise_one = mdrr::PairwiseRrDependences(
      data, p, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kMt19937, 1, dep_grain));
  double pairwise_t1 = timer.Seconds();
  timer.Restart();
  auto pairwise_many = mdrr::PairwiseRrDependences(
      data, p, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kMt19937, threads, dep_grain));
  double pairwise_tn = timer.Seconds();
  auto pairwise_philox_one = mdrr::PairwiseRrDependences(
      data, p, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kPhilox, 1, dep_grain));
  auto pairwise_philox_many = mdrr::PairwiseRrDependences(
      data, p, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kPhilox, threads,
                        dep_grain / 2 + 1));
  auto secure_one = mdrr::SecureSumDependences(
      data, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kMt19937, 1, dep_grain));
  auto secure_many = mdrr::SecureSumDependences(
      data, mdrr::mpc::SimulationMode::kFastSimulation, dep_seed,
      estimator_options(mdrr::RngKind::kPhilox, threads, dep_grain));
  if (!pairwise_one.ok() || !pairwise_many.ok() ||
      !pairwise_philox_one.ok() || !pairwise_philox_many.ok() ||
      !secure_one.ok() || !secure_many.ok()) {
    std::fprintf(stderr, "dependence estimators failed\n");
    return 1;
  }
  bool pairwise_same =
      SameMatrix(pairwise_one.value().dependences,
                 pairwise_many.value().dependences) &&
      SameMatrix(pairwise_philox_one.value().dependences,
                 pairwise_philox_many.value().dependences) &&
      !SameMatrix(pairwise_one.value().dependences,
                  pairwise_philox_one.value().dependences) &&
      // The secure sums are exact, so every policy and schedule must
      // agree bit for bit.
      SameMatrix(secure_one.value().dependences,
                 secure_many.value().dependences);
  stages.push_back({"dependence-pairwise", pairwise_t1, pairwise_tn,
                    pairwise_same});
  PrintStage(stages.back());

  // --- RR-Clusters (assessment + clustering + joint perturbation). ---
  timer.Restart();
  auto clusters_one = single.RunClusters(data, clusters_options);
  double clusters_t1 = timer.Seconds();
  timer.Restart();
  auto clusters_many = parallel.RunClusters(data, clusters_options);
  double clusters_tn = timer.Seconds();
  if (!clusters_one.ok() || !clusters_many.ok()) {
    std::fprintf(stderr, "RR-Clusters failed\n");
    return 1;
  }
  bool clusters_same =
      SameData(clusters_one.value().randomized,
               clusters_many.value().randomized) &&
      clusters_one.value().release_epsilon ==
          clusters_many.value().release_epsilon;
  for (size_t c = 0;
       clusters_same && c < clusters_one.value().cluster_results.size();
       ++c) {
    clusters_same = clusters_one.value().cluster_results[c].estimated ==
                    clusters_many.value().cluster_results[c].estimated;
  }
  stages.push_back({"RR-Clusters", clusters_t1, clusters_tn, clusters_same});
  PrintStage(stages.back());

  // --- Algorithm 2 adjustment on the clusters release. ---
  std::vector<mdrr::AdjustmentGroup> groups =
      mdrr::GroupsFromClusters(clusters_one.value());
  mdrr::AdjustmentOptions adjustment_options;
  adjustment_options.max_iterations = 25;
  timer.Restart();
  auto adjustment_one = single.RunAdjustment(groups, n, adjustment_options);
  double adjustment_t1 = timer.Seconds();
  timer.Restart();
  auto adjustment_many =
      parallel.RunAdjustment(groups, n, adjustment_options);
  double adjustment_tn = timer.Seconds();
  if (!adjustment_one.ok() || !adjustment_many.ok()) {
    std::fprintf(stderr, "adjustment failed\n");
    return 1;
  }
  stages.push_back(
      {"adjustment", adjustment_t1, adjustment_tn,
       adjustment_one.value().weights == adjustment_many.value().weights &&
           adjustment_one.value().iterations ==
               adjustment_many.value().iterations});
  PrintStage(stages.back());

  // --- Synthetic release from the clusters estimates. ---
  timer.Restart();
  auto synthetic_one =
      single.SynthesizeClusters(clusters_one.value(),
                                static_cast<int64_t>(n));
  double synthetic_t1 = timer.Seconds();
  timer.Restart();
  auto synthetic_many =
      parallel.SynthesizeClusters(clusters_one.value(),
                                  static_cast<int64_t>(n));
  double synthetic_tn = timer.Seconds();
  if (!synthetic_one.ok() || !synthetic_many.ok()) {
    std::fprintf(stderr, "synthetic release failed\n");
    return 1;
  }
  stages.push_back({"synthetic-release", synthetic_t1, synthetic_tn,
                    SameData(synthetic_one.value(), synthetic_many.value())});
  PrintStage(stages.back());

  // --- The release façade driving the same composition end to end
  // (clusters + adjustment + synthetic under one sharded-policy spec).
  // The stage both measures the API layer's overhead -- its time should
  // be within noise of the direct clusters+adjustment+synthetic sum
  // above -- and asserts zero divergence: façade output must be
  // bit-identical across thread counts AND to the direct engine calls.
  mdrr::release::ReleaseSpec spec;
  spec.mechanism.kind = mdrr::release::MechanismKind::kClusters;
  spec.mechanism.dependence_source = clusters_options.dependence_source;
  spec.budget.keep_probability = p;
  spec.adjustment.enabled = true;
  spec.adjustment.max_iterations = adjustment_options.max_iterations;
  spec.synthetic.enabled = true;
  spec.execution.kind = mdrr::release::PolicyKind::kSharded;
  spec.execution.seed = single.options().seed;
  spec.execution.shard_size = single.options().shard_size;

  auto run_facade = [&](size_t facade_threads)
      -> mdrr::StatusOr<mdrr::release::ReleaseArtifacts> {
    spec.execution.num_threads = facade_threads;
    MDRR_ASSIGN_OR_RETURN(mdrr::release::ReleasePlan plan,
                          mdrr::release::ReleasePlanner::Plan(spec, &data));
    return plan.Run();
  };
  timer.Restart();
  auto facade_one = run_facade(1);
  double facade_t1 = timer.Seconds();
  timer.Restart();
  auto facade_many = run_facade(threads);
  double facade_tn = timer.Seconds();
  if (!facade_one.ok() || !facade_many.ok()) {
    std::fprintf(stderr, "release facade failed\n");
    return 1;
  }
  bool facade_same =
      SameData(facade_one.value().randomized,
               facade_many.value().randomized) &&
      facade_one.value().adjustment->weights ==
          facade_many.value().adjustment->weights &&
      SameData(*facade_one.value().synthetic,
               *facade_many.value().synthetic) &&
      // Zero divergence from the direct engine composition.
      SameData(facade_one.value().randomized,
               clusters_one.value().randomized) &&
      facade_one.value().adjustment->weights ==
          adjustment_one.value().weights &&
      SameData(*facade_one.value().synthetic, synthetic_one.value());
  stages.push_back({"release-facade", facade_t1, facade_tn, facade_same});
  PrintStage(stages.back());
  double direct_t1 = clusters_t1 + adjustment_t1 + synthetic_t1;
  if (direct_t1 > 0.0) {
    std::printf("# facade overhead vs direct composition (t1): %+.1f%%\n",
                100.0 * (facade_t1 - direct_t1) / direct_t1);
  }

  // --- Distributed release: the RR-Independent workload with column
  // perturbation farmed out over loopback TCP to 2 worker protocol
  // endpoints (each running the exact tools/mdrr_worker session loop),
  // shipping matrices, shard slices, and merged counts through the net/
  // wire format. t1 is the in-process sharded engine at --threads, tN
  // the 2-worker distributed run, so the "speedup" column reads as the
  // transport overhead ratio. The identical bit asserts the tentpole
  // contract on EVERY run: the distributed transcript is bit-equal to
  // the in-process engine for both RNG policies. ---
  auto run_distributed = [&](mdrr::RngKind rng_kind)
      -> mdrr::StatusOr<mdrr::RrIndependentResult> {
    mdrr::net::CoordinatorOptions coordinator_options;
    coordinator_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    coordinator_options.rng = rng_kind;
    coordinator_options.shard_size = single.options().shard_size;
    mdrr::net::Coordinator coordinator(coordinator_options);
    MDRR_RETURN_IF_ERROR(coordinator.Listen(0));
    const uint16_t port = coordinator.port();
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
      workers.emplace_back(
          [port] { (void)mdrr::net::RunWorker("127.0.0.1", port); });
    }
    mdrr::Status accepted = coordinator.AcceptWorkers(2);
    if (!accepted.ok()) {
      coordinator.Abort(accepted.ToString());
      for (std::thread& worker : workers) worker.join();
      return accepted;
    }
    std::atomic<bool> perturb_failed{false};
    BatchPerturbationOptions engine_options = single.options();
    engine_options.rng = rng_kind;
    engine_options.shard_perturber =
        [&coordinator, &perturb_failed](
            const mdrr::RrMatrix& matrix, const std::vector<uint32_t>& codes,
            uint64_t stream_base,
            uint64_t counter_stream) -> mdrr::PerturbedColumn {
      auto column = coordinator.PerturbColumn(matrix, codes, stream_base,
                                              counter_stream);
      if (!column.ok()) {
        perturb_failed.store(true);
        mdrr::PerturbedColumn zero;
        zero.codes.assign(codes.size(), 0);
        zero.lambda.assign(matrix.size(), 0.0);
        return zero;
      }
      return std::move(column).value();
    };
    auto result = BatchPerturbationEngine(engine_options)
                      .RunIndependent(data, independent_options);
    mdrr::Status committed =
        perturb_failed.load()
            ? mdrr::Status::Internal("distributed perturbation failed")
            : coordinator.Commit();
    if (!committed.ok()) coordinator.Abort(committed.ToString());
    for (std::thread& worker : workers) worker.join();
    if (!result.ok()) return result.status();
    MDRR_RETURN_IF_ERROR(committed);
    return result;
  };
  timer.Restart();
  auto distributed_mt = run_distributed(mdrr::RngKind::kMt19937);
  double distributed_tn = timer.Seconds();
  auto distributed_philox = run_distributed(mdrr::RngKind::kPhilox);
  if (!distributed_mt.ok() || !distributed_philox.ok()) {
    std::fprintf(stderr, "distributed release failed: %s\n",
                 (!distributed_mt.ok() ? distributed_mt.status()
                                       : distributed_philox.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  bool distributed_same =
      SameData(distributed_mt.value().randomized,
               independent_many.value().randomized) &&
      SameEstimates(distributed_mt.value().estimated,
                    independent_many.value().estimated) &&
      SameData(distributed_philox.value().randomized,
               philox_many.value().randomized) &&
      SameEstimates(distributed_philox.value().estimated,
                    philox_many.value().estimated);
  stages.push_back({"release-distributed", independent_tn, distributed_tn,
                    distributed_same});
  PrintStage(stages.back());

  // --- Eq. (2) estimation on a high-cardinality joint domain. ---
  const size_t est_r = static_cast<size_t>(flags.GetInt("est_r", 512));
  const int64_t est_n = static_cast<int64_t>(n);
  std::vector<double> est_lambda(est_r);
  {
    mdrr::Rng lambda_rng(data_seed ^ 0x9e3779b97f4a7c15ULL);
    double total = 0.0;
    for (double& x : est_lambda) {
      x = lambda_rng.UniformDouble();
      total += x;
    }
    for (double& x : est_lambda) x /= total;
  }

  // Structured (the shape of every matrix the paper constructs): the
  // closed-form path must be O(r) -- in particular it must never reach an
  // LU factorization, which LuFactorizationCount makes observable.
  mdrr::RrMatrix structured_design =
      mdrr::RrMatrix::OptimalForEpsilon(est_r, 2.0);
  // The closed forms are O(r) and sub-millisecond even at nightly
  // cardinalities, so repeat them to lift the stage above timer noise.
  // The structured path has no parallel section -- expect speedup ~1.0;
  // the stage's signal is the time RATIO vs estimate-dense-lu and the
  // no-factorization assertion below.
  const int structured_reps = 1000;
  auto run_structured_estimation = [&](size_t est_threads) {
    mdrr::EstimationOptions est_options{est_threads};
    auto estimate = mdrr::EstimateProjectedDistribution(
        structured_design, est_lambda, est_options);
    auto variances = mdrr::EstimateVariances(structured_design, est_lambda,
                                             est_n, est_options);
    for (int rep = 1; rep < structured_reps; ++rep) {
      estimate = mdrr::EstimateProjectedDistribution(structured_design,
                                                     est_lambda, est_options);
      variances = mdrr::EstimateVariances(structured_design, est_lambda,
                                          est_n, est_options);
    }
    return std::make_pair(std::move(estimate), std::move(variances));
  };
  uint64_t factorizations_before = mdrr::linalg::LuFactorizationCount();
  timer.Restart();
  auto structured_one = run_structured_estimation(1);
  double structured_t1 = timer.Seconds();
  timer.Restart();
  auto structured_many = run_structured_estimation(threads);
  double structured_tn = timer.Seconds();
  bool structured_no_lu =
      mdrr::linalg::LuFactorizationCount() == factorizations_before;
  if (!structured_one.first.ok() || !structured_one.second.ok() ||
      !structured_many.first.ok() || !structured_many.second.ok()) {
    std::fprintf(stderr, "structured joint estimation failed\n");
    return 1;
  }
  if (!structured_no_lu) {
    std::fprintf(stderr,
                 "structured joint estimation executed an LU "
                 "factorization (the O(r) closed-form path regressed)\n");
  }
  stages.push_back(
      {"estimate-structured", structured_t1, structured_tn,
       structured_no_lu &&
           structured_one.first.value() == structured_many.first.value() &&
           structured_one.second.value() == structured_many.second.value()});
  PrintStage(stages.back());

  // Dense fallback at the same cardinality: blocked parallel LU +
  // SolveTransposeMany. Fresh RrMatrix instances per run so each thread
  // count pays (and times) its own factorization instead of sharing the
  // first run's cache.
  mdrr::linalg::Matrix dense_design =
      mdrr::RrMatrix::GeometricOrdinal(est_r, 2.0).ToDense();
  auto run_dense_estimation = [&](size_t est_threads)
      -> mdrr::StatusOr<std::pair<std::vector<double>,
                                  std::vector<double>>> {
    MDRR_ASSIGN_OR_RETURN(mdrr::RrMatrix matrix,
                          mdrr::RrMatrix::FromDense(dense_design));
    mdrr::EstimationOptions est_options{est_threads};
    MDRR_ASSIGN_OR_RETURN(
        std::vector<double> estimate,
        mdrr::EstimateDistribution(matrix, est_lambda, est_options));
    MDRR_ASSIGN_OR_RETURN(
        std::vector<double> variances,
        mdrr::EstimateVariances(matrix, est_lambda, est_n, est_options));
    return std::make_pair(std::move(estimate), std::move(variances));
  };
  timer.Restart();
  auto dense_one = run_dense_estimation(1);
  double dense_t1 = timer.Seconds();
  timer.Restart();
  auto dense_many = run_dense_estimation(threads);
  double dense_tn = timer.Seconds();
  if (!dense_one.ok() || !dense_many.ok()) {
    std::fprintf(stderr, "dense joint estimation failed\n");
    return 1;
  }
  stages.push_back(
      {"estimate-dense-lu", dense_t1, dense_tn,
       dense_one.value().first == dense_many.value().first &&
           dense_one.value().second == dense_many.value().second});
  PrintStage(stages.back());

  // --- Party-level two-round session. ---
  Dataset session_data =
      session_n == n ? data : mdrr::SynthesizeAdult(session_n, data_seed);
  mdrr::protocol::SessionOptions session_options;
  session_options.keep_probability = p;
  session_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  // The session grain is load-balancing only (never changes results), so
  // size it to give the parallel run ~8 batches per worker; the default
  // 65536 would clamp a 100k-party session to 2 workers.
  session_options.shard_size = std::max<size_t>(
      1, session_n / std::max<size_t>(1, 8 * threads));
  session_options.num_threads = 1;
  // Untimed warm-up: the session stages are the first allocations of the
  // party state (~2.5 KB of engine per party), and on virtualized runners
  // first-ever RSS growth faults in at a fraction of reuse bandwidth --
  // a one-time provisioning cost that would otherwise land on whichever
  // session run happens to execute first and distort every ratio below.
  {
    auto warmup =
        mdrr::protocol::RunDistributedSession(session_data, session_options);
    if (!warmup.ok()) {
      std::fprintf(stderr, "session warm-up failed\n");
      return 1;
    }
  }
  timer.Restart();
  auto session_one =
      mdrr::protocol::RunDistributedSession(session_data, session_options);
  double session_t1 = timer.Seconds();
  session_options.num_threads = threads;
  timer.Restart();
  auto session_many =
      mdrr::protocol::RunDistributedSession(session_data, session_options);
  double session_tn = timer.Seconds();
  if (!session_one.ok() || !session_many.ok()) {
    std::fprintf(stderr, "session failed\n");
    return 1;
  }
  stages.push_back(
      {"protocol-session", session_t1, session_tn,
       session_one.value().clusters == session_many.value().clusters &&
           session_one.value().cluster_joints ==
               session_many.value().cluster_joints &&
           SameData(session_one.value().randomized,
                    session_many.value().randomized)});
  PrintStage(stages.back());

  // --- Session fast path vs the per-party reference loop. Both columns
  // are sequential runs: t1 is the Party-object loop (the seed
  // semantics), tN the batched PartyBlock sweep, so the "speedup" column
  // reads as the fast path's per-party win and the identical column
  // asserts the transcript contract (publication columns, clustering,
  // Eq. (2) joints, decoded release, epsilons, message counts) on every
  // invocation. ---
  session_options.num_threads = 1;
  session_options.execution = mdrr::protocol::SessionExecution::kPartyLoop;
  timer.Restart();
  auto session_loop =
      mdrr::protocol::RunDistributedSession(session_data, session_options);
  double session_loop_t = timer.Seconds();
  session_options.execution = mdrr::protocol::SessionExecution::kBatched;
  timer.Restart();
  auto session_batched =
      mdrr::protocol::RunDistributedSession(session_data, session_options);
  double session_batched_t = timer.Seconds();
  if (!session_loop.ok() || !session_batched.ok()) {
    std::fprintf(stderr, "session fast-path comparison failed\n");
    return 1;
  }
  stages.push_back(
      {"session-batched", session_loop_t, session_batched_t,
       session_loop.value().clusters == session_batched.value().clusters &&
           session_loop.value().cluster_joints ==
               session_batched.value().cluster_joints &&
           session_loop.value().round1_epsilon ==
               session_batched.value().round1_epsilon &&
           session_loop.value().round2_epsilon ==
               session_batched.value().round2_epsilon &&
           session_loop.value().messages_round1 ==
               session_batched.value().messages_round1 &&
           session_loop.value().messages_round2 ==
               session_batched.value().messages_round2 &&
           SameData(session_loop.value().randomized,
                    session_batched.value().randomized)});
  PrintStage(stages.back());

  // --- Streaming windowed collection. The collector ingests the session
  // workload through the lock-free channels at 1 vs N ingest threads and
  // re-runs the Eq. (2) closed forms per tumbling window; the identical
  // column asserts the per-window transcripts bit-equal AND that the
  // structured windows triggered zero LU factorizations. ---
  mdrr::release::ReleaseSpec stream_spec;
  stream_spec.mechanism.kind = mdrr::release::MechanismKind::kIndependent;
  stream_spec.budget.keep_probability = p;
  stream_spec.streaming.enabled = true;
  stream_spec.streaming.window_size =
      std::max<uint64_t>(1, static_cast<uint64_t>(session_n) / 8);
  stream_spec.execution.seed = session_options.seed;
  auto run_streaming = [&](size_t ingest_threads) {
    mdrr::protocol::StreamingReplayOptions streaming_options;
    streaming_options.num_ingest_threads = ingest_threads;
    streaming_options.collector.num_shards = std::min<size_t>(
        4, std::max<size_t>(1, ingest_threads));
    return mdrr::protocol::RunStreamingReplay(stream_spec, session_data,
                                              streaming_options);
  };
  const uint64_t lu_before_streaming = mdrr::linalg::LuFactorizationCount();
  timer.Restart();
  auto streaming_one = run_streaming(1);
  double streaming_t1 = timer.Seconds();
  timer.Restart();
  auto streaming_many = run_streaming(threads);
  double streaming_tn = timer.Seconds();
  if (!streaming_one.ok() || !streaming_many.ok()) {
    std::fprintf(stderr, "streaming-window failed\n");
    return 1;
  }
  stages.push_back(
      {"streaming-window", streaming_t1, streaming_tn,
       mdrr::release::PrintStreamWindows(streaming_one.value().windows) ==
               mdrr::release::PrintStreamWindows(
                   streaming_many.value().windows) &&
           !streaming_one.value().windows.empty() &&
           mdrr::linalg::LuFactorizationCount() == lu_before_streaming});
  PrintStage(stages.back());

  int failures = 0;
  for (const StageResult& stage : stages) {
    if (!stage.identical) ++failures;
  }

  std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"parallel_release_pipeline\",\n"
                 "  \"n\": %zu,\n  \"session_n\": %zu,\n"
                 "  \"threads\": %zu,\n  \"shard_size\": %zu,\n"
                 "  \"est_r\": %zu,\n"
                 "  \"stages\": [\n",
                 n, session_n, threads, single.options().shard_size, est_r);
    for (size_t i = 0; i < stages.size(); ++i) {
      std::fprintf(
          f,
          "    {\"stage\": \"%s\", \"t1_seconds\": %.3f, "
          "\"tN_seconds\": %.3f, \"speedup\": %.2f, "
          "\"bit_identical\": %s}%s\n",
          stages[i].name.c_str(), stages[i].t1, stages[i].tn,
          stages[i].tn > 0.0 ? stages[i].t1 / stages[i].tn : 0.0,
          stages[i].identical ? "true" : "false",
          i + 1 < stages.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", json_out.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d stage(s) were not bit-identical across thread "
                 "counts\n",
                 failures);
    return 1;
  }
  return 0;
}
