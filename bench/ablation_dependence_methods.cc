// Ablation A5: the three privacy-preserving dependence-assessment methods
// of Sections 4.1-4.3 against the trusted-party oracle -- fidelity (max
// absolute deviation of the dependence matrix and whether the resulting
// Algorithm 1 clustering matches), privacy cost, and communication cost.
//
// Usage: ablation_dependence_methods [--n=8000] [--p=0.8] [--seed=1]

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/clustering.h"
#include "mdrr/core/dependence_estimators.h"
#include "mdrr/dataset/adult.h"

namespace {

double MaxDeviation(const mdrr::linalg::Matrix& a,
                    const mdrr::linalg::Matrix& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

bool SameClustering(const mdrr::AttributeClustering& a,
                    const mdrr::AttributeClustering& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 8000));
  const double p = flags.GetDouble("p", 0.8);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::Dataset adult = mdrr::SynthesizeAdult(n, seed);
  mdrr::ClusteringOptions clustering{50.0, 0.1};

  mdrr::bench::PrintHeader(
      "Ablation: dependence assessment methods (Sections 4.1-4.3) vs "
      "oracle");
  std::printf("# n = %zu, dependence-round keep probability p = %.2f\n", n,
              p);

  mdrr::DependenceEstimate oracle = mdrr::OracleDependences(adult);
  auto oracle_clusters =
      mdrr::ClusterAttributes(adult, oracle.dependences, clustering);
  if (!oracle_clusters.ok()) return 1;

  std::printf("%-26s %10s %12s %14s %10s\n", "method", "max dev", "epsilon",
              "messages", "clusters");

  auto report = [&](const char* name,
                    const mdrr::DependenceEstimate& estimate) {
    auto clusters =
        mdrr::ClusterAttributes(adult, estimate.dependences, clustering);
    const char* verdict = "ERROR";
    if (clusters.ok()) {
      verdict = SameClustering(clusters.value(), oracle_clusters.value())
                    ? "same"
                    : "differ";
    }
    std::printf("%-26s %10.4f %12.4g %14llu %10s\n", name,
                MaxDeviation(estimate.dependences, oracle.dependences),
                estimate.epsilon,
                static_cast<unsigned long long>(estimate.messages), verdict);
  };

  report("oracle (trusted party)", oracle);
  report("4.1 per-attribute RR",
         mdrr::RandomizedResponseDependences(adult, p, seed + 1));
  auto secure = mdrr::SecureSumDependences(
      adult, mdrr::mpc::SimulationMode::kFastSimulation, seed + 2);
  if (secure.ok()) report("4.2 secure-sum bivariate", secure.value());
  auto pairwise = mdrr::PairwiseRrDependences(
      adult, p, mdrr::mpc::SimulationMode::kFastSimulation, seed + 3);
  if (pairwise.ok()) report("4.3 pairwise RR + sum", pairwise.value());

  std::printf(
      "# shape check: 4.2 is exact but eps=inf; 4.1 attenuates values yet\n"
      "# typically preserves the clustering; 4.3 trades accuracy for a\n"
      "# finite parallel-composition epsilon at high message cost\n");
  return 0;
}
