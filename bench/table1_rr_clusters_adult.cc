// Table 1: median relative error of RR-Clusters on Adult for
// Tv in {50, 100, 300}, Td in {0.1, 0.2, 0.3} and randomization
// p in {0.1, 0.3, 0.5, 0.7}, at coverage sigma = 0.1.
//
// Usage: table1_rr_clusters_adult [--runs=25] [--seed=1] [--sigma=0.1]
//                                 [--adult_csv=...] [--n=32561] [--tile=1]

#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/dependence.h"
#include "mdrr/eval/experiment.h"

namespace {

int RunGrid(const mdrr::Dataset& dataset, const mdrr::FlagSet& flags,
            const char* title) {
  const int runs = mdrr::bench::RunsFlag(flags);
  const size_t query_attrs = static_cast<size_t>(flags.GetInt("query_attrs", 2));
  const double sigma = flags.GetDouble("sigma", 0.1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  mdrr::bench::PrintHeader(title);
  std::printf("# n = %zu records, %d runs per cell (paper: 1000), sigma=%.2f\n",
              dataset.num_rows(), runs, sigma);

  // The attribute dependences do not change across the grid: hoist them.
  mdrr::linalg::Matrix dependences = mdrr::DependenceMatrix(dataset);

  const double ps[] = {0.1, 0.3, 0.5, 0.7};
  const double tds[] = {0.1, 0.2, 0.3};
  const double tvs[] = {50, 100, 300};

  std::printf("%5s %5s  %8s %8s %8s\n", "p", "Td", "Tv=50", "Tv=100",
              "Tv=300");
  for (double p : ps) {
    for (double td : tds) {
      std::printf("%5.1f %5.1f ", p, td);
      for (double tv : tvs) {
        mdrr::eval::ExperimentConfig config;
        config.method = mdrr::eval::Method::kRrClusters;
        config.keep_probability = p;
        config.clustering = mdrr::ClusteringOptions{tv, td};
        config.dependences = &dependences;
        config.sigma = sigma;
        config.query_attributes = query_attrs;
        config.runs = runs;
        config.seed = seed;
        auto result = RunCountQueryExperiment(dataset, config);
        if (!result.ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        std::printf(" %8.3f", result.value().median_relative_error);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "# paper shape check: error grows with Tv; decreases sharply as p\n"
      "# grows; Td matters little at large p\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  int64_t tile = flags.GetInt("tile", 1);
  if (tile > 1) adult = adult.Tiled(static_cast<size_t>(tile));
  return RunGrid(adult, flags,
                 "Table 1: RR-Clusters relative error on Adult");
}
