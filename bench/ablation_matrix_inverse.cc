// Ablation A2: the cost of the Eq. (2) estimator with the structured O(r)
// closed-form inverse versus generic LU factorization -- the computational
// claim of Sections 3.1/4 (structured inversion in O(|A|^2) or better vs
// O(|A|^2.807) Strassen / O(r^3) LU).
//
// google-benchmark binary; run with --benchmark_filter=... as usual.

#include <vector>

#include <benchmark/benchmark.h>

#include "mdrr/core/estimator.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/linalg/lu.h"
#include "mdrr/rng/rng.h"

namespace {

std::vector<double> MakeLambda(size_t r) {
  mdrr::Rng rng(r);
  std::vector<double> lambda(r);
  double total = 0.0;
  for (double& x : lambda) {
    x = rng.UniformDouble() + 0.01;
    total += x;
  }
  for (double& x : lambda) x /= total;
  return lambda;
}

void BM_StructuredSolveTranspose(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  mdrr::RrMatrix matrix = mdrr::RrMatrix::KeepUniform(r, 0.7);
  std::vector<double> lambda = MakeLambda(r);
  for (auto _ : state) {
    auto result = matrix.SolveTranspose(lambda);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(r));
}
BENCHMARK(BM_StructuredSolveTranspose)
    ->RangeMultiplier(4)
    ->Range(8, 2048)
    ->Complexity(benchmark::oN);

void BM_LuSolveTranspose(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  mdrr::linalg::Matrix dense =
      mdrr::RrMatrix::KeepUniform(r, 0.7).ToDense().Transpose();
  std::vector<double> lambda = MakeLambda(r);
  for (auto _ : state) {
    auto result = mdrr::linalg::SolveLinearSystem(dense, lambda);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(r));
}
BENCHMARK(BM_LuSolveTranspose)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Complexity(benchmark::oNCubed);

void BM_LuFullInverse(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  mdrr::linalg::Matrix dense = mdrr::RrMatrix::KeepUniform(r, 0.7).ToDense();
  for (auto _ : state) {
    auto result = mdrr::linalg::Invert(dense);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(r));
}
BENCHMARK(BM_LuFullInverse)->RangeMultiplier(4)->Range(8, 256);

}  // namespace

BENCHMARK_MAIN();
