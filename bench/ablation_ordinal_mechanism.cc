// Ablation: the distance-graded GeometricOrdinal design versus
// KeepUniform on ordinal range queries (Section 8 future work). The two
// mechanisms are calibrated to equal ADJACENT-category protection (the
// metric-privacy contract); the geometric design then answers range
// queries on the raw randomized data far more accurately, at the price
// of a higher worst-case epsilon for distant categories.
//
// Workload: Education (16 ordered levels) on synthetic Adult; range
// queries [lo, hi] of every width, errors on raw randomized counts.
//
// Usage: ablation_ordinal_mechanism [--alpha=0.4] [--n=32561] [--seed=1]

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "mdrr/common/flags.h"
#include "mdrr/core/joint_estimate.h"
#include "mdrr/core/rr_matrix.h"
#include "mdrr/dataset/adult.h"
#include "mdrr/eval/metrics.h"
#include "mdrr/eval/subset_query.h"
#include "mdrr/rng/rng.h"

namespace {

double WorstAdjacentRatio(const mdrr::RrMatrix& m) {
  double worst = 1.0;
  for (size_t v = 0; v < m.size(); ++v) {
    for (size_t u = 0; u + 1 < m.size(); ++u) {
      double a = m.Prob(u, v);
      double b = m.Prob(u + 1, v);
      if (a > 0 && b > 0) worst = std::max(worst, std::max(a / b, b / a));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  mdrr::FlagSet flags;
  flags.Parse(argc, argv);
  mdrr::Dataset adult = mdrr::bench::LoadAdult(flags);
  const double alpha = flags.GetDouble("alpha", 0.4);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  const size_t attr = mdrr::kAdultEducation;
  const size_t r = adult.attribute(attr).cardinality();

  mdrr::RrMatrix geometric =
      mdrr::RrMatrix::GeometricOrdinal(r, alpha * static_cast<double>(r - 1));
  double alpha_geo = std::log(WorstAdjacentRatio(geometric));
  double p = (std::exp(alpha_geo) - 1.0) / (std::exp(alpha_geo) - 1.0 + r);
  mdrr::RrMatrix uniform = mdrr::RrMatrix::KeepUniform(r, p);

  mdrr::bench::PrintHeader(
      "Ablation: GeometricOrdinal vs KeepUniform on ordinal range queries "
      "(equal adjacent-category protection)");
  std::printf(
      "# Education (r=%zu), adjacent protection e^%.3f for both;\n"
      "# worst-case eps: geometric %.2f, keep-uniform %.2f\n",
      r, alpha_geo, geometric.Epsilon(), uniform.Epsilon());

  mdrr::Rng rng(seed);
  std::vector<uint32_t> truth = adult.column(attr);
  std::vector<uint32_t> geo_reports = geometric.RandomizeColumn(truth, rng);
  std::vector<uint32_t> uni_reports = uniform.RandomizeColumn(truth, rng);

  mdrr::Dataset geo_data = adult;
  geo_data.SetColumn(attr, geo_reports);
  mdrr::Dataset uni_data = adult;
  uni_data.SetColumn(attr, uni_reports);
  mdrr::EmpiricalCounts true_counts(adult);
  mdrr::EmpiricalCounts geo_counts(geo_data);
  mdrr::EmpiricalCounts uni_counts(uni_data);

  std::printf("%8s  %14s %14s\n", "width", "relerr(geom)", "relerr(KU)");
  for (uint32_t width : {2u, 4u, 6u, 8u, 12u}) {
    double geo_err = 0.0;
    double uni_err = 0.0;
    int windows = 0;
    for (uint32_t lo = 0; lo + width <= r; ++lo) {
      mdrr::CountQuery query =
          mdrr::eval::MakeRangeQuery(adult, attr, lo, lo + width - 1);
      double t = true_counts.EstimateCount(query);
      if (t == 0.0) continue;
      geo_err += mdrr::eval::RelativeError(geo_counts.EstimateCount(query), t);
      uni_err += mdrr::eval::RelativeError(uni_counts.EstimateCount(query), t);
      ++windows;
    }
    if (windows == 0) continue;
    std::printf("%8u  %14.4f %14.4f\n", width, geo_err / windows,
                uni_err / windows);
  }
  std::printf(
      "# shape check: the geometric design's raw range counts are several\n"
      "# times more accurate at every width; its price is the higher\n"
      "# worst-case epsilon printed above\n");
  return 0;
}
